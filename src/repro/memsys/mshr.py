"""Miss Status Holding Registers.

An MSHR file bounds the number of outstanding misses a cache can have in
flight (Table I: 8 entries at the L1).  In our latency-based model it has
two jobs: *merging* (a second miss to a block already in flight piggybacks
on the first) and *back-pressure* (a miss issued while all entries are busy
stalls until the oldest outstanding miss completes).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.common.stats import StatGroup


class MshrFile:
    """Tracks outstanding misses as ``block -> completion_time``.

    Times are core cycles (floats are accepted; ordering is what matters).
    Entries whose completion time has passed are garbage-collected lazily
    on each call, so the structure never grows beyond the live misses plus
    at most the stalled reservations issued against them.

    A stalled reservation (:meth:`reserve` on a full file) never removes
    the blocking entries: they remain visible to :meth:`lookup`/:meth:`merge`
    until their real completion times, exactly like hardware, where a
    stalled miss waits in the queue while the oldest outstanding miss
    finishes its fill.
    """

    def __init__(self, entries: int, stats: Optional[StatGroup] = None) -> None:
        if entries <= 0:
            raise ValueError(f"MSHR entries must be positive, got {entries}")
        self.entries = entries
        self.stats = stats if stats is not None else StatGroup("mshr")
        self._inflight: Dict[int, float] = {}
        self._starts: Dict[int, float] = {}
        self._heap: List[tuple] = []  # (completion_time, block)
        # Stalled reservations only: (start_time, block) ordered by start.
        # ``_starts`` holds the authoritative value; heap entries whose
        # start no longer matches it are stale and skipped on pop.
        self._pending: List[tuple] = []
        # High-water mark of ``now``; ``_expire`` is already destructive
        # under non-monotone time, so the clock bakes in the same
        # assumption rather than adding a new one.
        self._clock = float("-inf")

    def _expire(self, now: float) -> None:
        if now > self._clock:
            self._clock = now
        while self._heap and self._heap[0][0] <= now:
            time, block = heapq.heappop(self._heap)
            # Stale heap entries (block re-registered later) are skipped.
            if self._inflight.get(block) == time:
                del self._inflight[block]
                self._starts.pop(block, None)

    def outstanding(self, now: float) -> int:
        """Number of misses still in flight at ``now``."""
        self._expire(now)
        return len(self._inflight)

    def occupancy(self, now: float) -> int:
        """Entries actually *occupied* at ``now``: started but not finished.

        Differs from :meth:`outstanding` only while a stalled reservation
        is waiting for its slot: the stalled miss is registered (so later
        accesses can merge with it) but does not hold an entry until its
        start time.  The invariant checker asserts this never exceeds
        ``entries``.
        """
        self._expire(now)
        # Amortized O(1): ``_starts`` holds exactly the live misses whose
        # entry claim is still in the future, so occupancy is a size
        # subtraction once starts that have passed are popped.  (After
        # ``_expire`` every in-flight finish is > now, so the old
        # per-entry finish check is vacuous.)
        pending = self._pending
        starts = self._starts
        while pending and pending[0][0] <= now:
            start, block = heapq.heappop(pending)
            if starts.get(block) == start:
                del starts[block]
        return len(self._inflight) - len(starts)

    def lookup(self, block: int, now: float) -> Optional[float]:
        """Completion time of an in-flight miss to ``block``, if any."""
        self._expire(now)
        time = self._inflight.get(block)
        if time is not None and time > now:
            return time
        return None

    def reserve(self, now: float) -> float:
        """Find the earliest time a new miss can issue.

        If the file is full at ``now``, the miss stalls until enough of
        the oldest outstanding misses retire to free an entry; the
        returned time is when the request actually leaves the cache.  The
        blocking entries are *not* removed — their completions are still
        in the future, and later accesses must keep merging with them
        (they expire on their own once ``now`` passes their completion).
        """
        self._expire(now)
        overflow = len(self._inflight) - self.entries + 1
        if overflow <= 0:
            return now
        # Stalled requests are served FIFO, so the ``overflow``-th
        # completion among the live misses is when this one gets a slot.
        start = heapq.nsmallest(overflow, self._inflight.values())[-1]
        self.stats.add("stalls")
        return max(now, start)

    def commit(self, block: int, finish: float, start: Optional[float] = None) -> None:
        """Register an issued miss that will complete at ``finish``.

        ``start`` is when the miss actually claims its entry (the value
        :meth:`reserve` returned); omitted, the entry is treated as
        occupied from registration, which is exact for unstalled misses.
        """
        self._inflight[block] = finish
        if start is not None and start > self._clock:
            # Only stalled reservations have a future start; unstalled
            # commits (start <= clock) are occupied at once and never
            # touch the pending heap.
            self._starts[block] = start
            heapq.heappush(self._pending, (start, block))
        else:
            self._starts.pop(block, None)
        heapq.heappush(self._heap, (finish, block))
        self.stats.add("allocations")

    def allocate(self, block: int, now: float, completion: float) -> float:
        """Reserve an entry for a new miss; returns the *stall-adjusted* start.

        Convenience wrapper over :meth:`reserve` + :meth:`commit` for
        callers whose downstream latency is already known: the completion
        time is shifted by any stall the reservation incurred.
        """
        start = self.reserve(now)
        self.commit(block, completion + (start - now), start=start)
        return start

    def inflight_blocks(self):
        """Snapshot of the blocks currently registered in flight.

        State-export hook for the vectorized miss path's batched MSHR
        gate: a block absent from this snapshot (and not re-registered
        in between) provably cannot merge, so the scalar merge probe
        can be skipped for it.  Deliberately does *not* expire — a pure
        read with no clock argument cannot perturb the lazy-expiry
        order, and unexpired entries only make the gate conservative.
        """
        return list(self._inflight)

    def merge(self, block: int, now: float) -> Optional[float]:
        """Merge with an in-flight miss; returns its completion time or None."""
        time = self.lookup(block, now)
        if time is not None:
            self.stats.add("merges")
        return time
