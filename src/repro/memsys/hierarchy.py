"""The full memory hierarchy: per-core L1Ds, a shared LLC, DRAM.

This module wires the substrate together exactly as Section V describes:

* each core has a private L1D (64 KB, 8-way, 8 MSHRs);
* all cores share one LLC (8 MB, 16-way, 15-cycle hit);
* prefetchers are *per core*, observe **LLC demand accesses** (hits and
  misses), and prefetch **into the LLC** — no prefetch buffers, no
  metadata sharing between cores;
* every LLC eviction is broadcast to the prefetchers so per-page-history
  schemes can close region residencies.

The model is latency-based rather than cycle-by-cycle: each access returns
its end-to-end latency, in-flight prefetches are materialised in the LLC
with a ``ready_time``, and DRAM channel occupancy provides bandwidth
back-pressure.  DESIGN.md §6 documents the fidelity trade-offs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.memsys.cache import BlockState, Cache
from repro.memsys.dram import DramModel
from repro.memsys.mshr import MshrFile
from repro.memsys.replacement import make_replacement
from repro.memsys.translation import RandomFirstTouchTranslator
from repro.obs.events import DemandHit, DemandMiss, PrefetchFill, PrefetchIssued
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.prefetchers.base import AccessInfo, Prefetcher


class AccessResult:
    """Outcome of one demand access through the hierarchy.

    A plain ``__slots__`` class rather than a dataclass: one instance is
    allocated per demand access, squarely on the simulator's hot path.
    """

    __slots__ = (
        "latency",
        "l1_hit",
        "llc_hit",
        "llc_miss",
        "covered",
        "late",
        "prefetches_issued",
    )

    def __init__(
        self,
        latency: float,
        l1_hit: bool = False,
        llc_hit: bool = False,
        llc_miss: bool = False,
        covered: bool = False,  # hit on a not-yet-used prefetched block
        late: bool = False,  # ...whose fill had not completed yet
        prefetches_issued: int = 0,
    ) -> None:
        self.latency = latency
        self.l1_hit = l1_hit
        self.llc_hit = llc_hit
        self.llc_miss = llc_miss
        self.covered = covered
        self.late = late
        self.prefetches_issued = prefetches_issued

    def __repr__(self) -> str:
        return (
            f"AccessResult(latency={self.latency!r}, l1_hit={self.l1_hit!r}, "
            f"llc_hit={self.llc_hit!r}, llc_miss={self.llc_miss!r}, "
            f"covered={self.covered!r}, late={self.late!r}, "
            f"prefetches_issued={self.prefetches_issued!r})"
        )


class MemoryHierarchy:
    """Private L1Ds over a shared, prefetched LLC over banked DRAM."""

    def __init__(
        self,
        config: SystemConfig,
        prefetchers: Optional[Sequence[Prefetcher]] = None,
        stats: Optional[StatGroup] = None,
        train_at: str = "llc",
        sink: TraceSink = NULL_SINK,
        replacement: str = "lru",
        replacement_oracle=None,
    ) -> None:
        """``train_at`` selects where prefetchers observe traffic.

        ``"llc"`` (the paper's choice, Section V) trains on LLC demand
        accesses with LLC evictions ending region residencies; ``"l1"``
        trains on *every* L1D access with L1 evictions ending residencies
        — SMS's original placement.  Prefetches always fill the LLC.  The
        paper argues pages linger far longer at the multi-megabyte LLC,
        giving footprints time to complete; the placement ablation bench
        quantifies exactly that.

        ``replacement`` names an LLC policy from
        :mod:`repro.memsys.replacement` ("lru", the default, keeps the
        cache model's native OrderedDict fast path and is byte-identical
        to the pre-zoo engine).  L1 replacement stays native LRU: the
        vectorized tier mirrors the L1s as stamp arrays, so L1
        pluggability would fork the tiers (docs/replacement.md).
        ``replacement_oracle`` supplies next-use knowledge for "opt";
        the engine builds it from the compiled workload and it is bound
        to the live translator here.
        """
        if train_at not in ("llc", "l1"):
            raise ValueError(f"train_at must be 'llc' or 'l1', got {train_at!r}")
        self.config = config
        self.train_at = train_at
        self.stats = stats if stats is not None else StatGroup("memsys")
        # One sink for the whole hierarchy; LLC traffic, prefetch issue,
        # and prefetcher decisions all land in one ordered stream.
        self.sink = sink if sink is not None else NULL_SINK
        amap = config.address_map
        self.address_map = amap

        if prefetchers is None:
            prefetchers = []
        if len(prefetchers) not in (0, config.num_cores):
            raise ValueError(
                f"need 0 or {config.num_cores} prefetchers, got {len(prefetchers)}"
            )
        self.prefetchers: List[Prefetcher] = list(prefetchers)
        for pf in self.prefetchers:
            pf.stats = self.stats.child("prefetcher").child(pf.name)
            pf.sink = self.sink

        self.translator = RandomFirstTouchTranslator(
            amap, config.physical_pages, config.translation_seed
        )
        self.replacement = replacement
        # "lru" stays on the cache model's built-in OrderedDict order —
        # zero per-access overhead and byte-identical to the pre-zoo
        # engine; anything else goes through the policy interface.
        if replacement == "lru":
            llc_policy = None
        else:
            llc_policy = make_replacement(
                replacement,
                config.llc.sets,
                config.llc.ways,
                oracle=replacement_oracle,
            )
        if replacement_oracle is not None:
            replacement_oracle.attach(self.translator)
        # prebound observe hook: one attribute test on the demand path
        self._oracle_observe = (
            replacement_oracle.observe if replacement_oracle is not None else None
        )
        l1_on_evict = self._handle_l1_eviction if train_at == "l1" else None
        self.l1ds = [
            Cache(
                config.l1d,
                name=f"l1d{i}",
                on_evict=l1_on_evict,
                stats=self.stats.child(f"l1d{i}"),
            )
            for i in range(config.num_cores)
        ]
        self.l1_mshrs = [
            MshrFile(config.l1d.mshr_entries, self.stats.child(f"l1d{i}").child("mshr"))
            for i in range(config.num_cores)
        ]
        self.llc = Cache(
            config.llc,
            name="llc",
            on_evict=self._handle_llc_eviction,
            stats=self.stats.child("llc"),
            sink=self.sink,
            policy=llc_policy,
        )
        self.dram = DramModel(
            config.dram, config.core, amap.block_size, self.stats.child("dram")
        )
        self._llc_stats = self.stats.child("llc")
        self._block_bits = amap.block_bits
        self._now = 0.0  # advanced by accesses; used to time writebacks

        # Fast-path counter cells, hoisted so the per-access path touches
        # no string keys.  One triple per core for the L1s, one set for
        # the shared LLC.
        llc_stats = self._llc_stats
        self._c_demand_accesses = llc_stats.counter("demand_accesses")
        self._c_demand_writes = llc_stats.counter("demand_writes")
        self._c_demand_hits = llc_stats.counter("demand_hits")
        self._c_demand_misses = llc_stats.counter("demand_misses")
        self._c_covered = llc_stats.counter("covered")
        self._c_prefetch_hits = llc_stats.counter("prefetch_hits")
        self._c_late_covered = llc_stats.counter("late_covered")
        self._c_prefetches_issued = llc_stats.counter("prefetches_issued")
        self._c_redundant = llc_stats.counter("redundant_prefetches")
        self._c_rejected = llc_stats.counter("rejected_prefetches")
        self._c_overpredictions = llc_stats.counter("overpredictions")
        self._l1_accesses = [l1.stats.counter("accesses") for l1 in self.l1ds]
        self._l1_hits = [l1.stats.counter("hits") for l1 in self.l1ds]
        self._l1_misses = [l1.stats.counter("misses") for l1 in self.l1ds]

    # -- eviction plumbing ---------------------------------------------------
    def _handle_llc_eviction(self, block: int, state: BlockState) -> None:
        if state.prefetched and not state.used:
            self._c_overpredictions.value += 1
        if state.dirty and self.config.model_writebacks:
            self.dram.writeback(self._now, block << self._block_bits)
        if self.train_at == "llc":
            self._notify_eviction(block, state.used)

    def _handle_l1_eviction(self, block: int, state: BlockState) -> None:
        """L1-training mode: L1 evictions end region residencies."""
        self._notify_eviction(block, was_used=True)

    def _notify_eviction(self, block: int, was_used: bool) -> None:
        # Broadcast once per distinct prefetcher instance: with shared
        # metadata (the Section V ablation) all cores route to one object,
        # which must not see the same eviction four times.
        seen = set()
        for pf in self.prefetchers:
            if id(pf) not in seen:
                seen.add(id(pf))
                pf.on_eviction(block, was_used)

    # -- the demand path --------------------------------------------------------
    def access(
        self,
        core_id: int,
        pc: int,
        vaddr: int,
        now: float,
        is_write: bool = False,
    ) -> AccessResult:
        """One demand load/store from ``core_id`` at cycle ``now``."""
        cfg = self.config
        paddr = self.translator.translate(core_id, vaddr)
        block = paddr >> self._block_bits

        # ---- L1D ----
        l1 = self.l1ds[core_id]
        self._l1_accesses[core_id].value += 1
        l1_hit = l1.lookup(block) is not None

        # L1-training mode: the prefetcher sees every L1 access.
        if self.prefetchers and self.train_at == "l1":
            self._now = max(self._now, now)
            pf = self.prefetchers[core_id]
            info = AccessInfo(
                pc=pc,
                address=paddr,
                block=block,
                hit=l1_hit,
                time=now,
                core_id=core_id,
                is_write=is_write,
            )
            requests = pf.clamp_degree(pf.on_access(info))
            if requests:
                self._issue_prefetches(pf, core_id, block, requests, now)

        if l1_hit:
            self._l1_hits[core_id].value += 1
            return AccessResult(latency=cfg.l1d.hit_latency, l1_hit=True)
        self._l1_misses[core_id].value += 1

        # L1 MSHR: merge with an outstanding miss to the same block, or
        # stall if the file is full.
        mshr = self.l1_mshrs[core_id]
        merged = mshr.merge(block, now)
        if merged is not None:
            latency = (merged - now) + cfg.l1d.hit_latency
            return AccessResult(latency=latency, llc_hit=True)
        start = mshr.reserve(now)
        issue = start + cfg.l1d.hit_latency

        # ---- LLC (demand) ----
        result = self._llc_access(core_id, pc, paddr, block, issue, is_write)
        total = (issue - now) + cfg.l1d.hit_latency + result.latency
        mshr.commit(block, now + total, start=start)

        # Fill the L1 (non-inclusive victim handling: L1 victims vanish).
        l1.fill(block, BlockState(core_id=core_id))
        result.latency = total
        return result

    def _llc_access(
        self,
        core_id: int,
        pc: int,
        paddr: int,
        block: int,
        now: float,
        is_write: bool,
    ) -> AccessResult:
        cfg = self.config
        self._c_demand_accesses.value += 1
        self._now = max(self._now, now)
        if self._oracle_observe is not None:
            # Belady bookkeeping: consume this block's occurrence so
            # next_use() looks strictly into the future.  Demand accesses
            # only — prefetch fills are not program references.
            self._oracle_observe(block)
        if is_write:
            self._c_demand_writes.value += 1

        state = self.llc.lookup(block)
        hit = state is not None
        result = AccessResult(latency=0.0)
        sink = self.sink

        if hit:
            wait = max(0.0, state.ready_time - now)
            if state.prefetched and not state.used:
                # First demand use of a prefetched block: a covered miss.
                state.used = True
                self._c_covered.value += 1
                self._c_prefetch_hits.value += 1
                result.covered = True
                if wait > 0:
                    self._c_late_covered.value += 1
                    result.late = True
                if self.prefetchers:
                    # Tell the issuing prefetcher its prefetch was
                    # consumed: accuracy feedback must not wait for the
                    # block's eviction (which may never be observed).
                    self.prefetchers[state.core_id].on_prefetch_used(block)
            else:
                self._c_demand_hits.value += 1
            result.llc_hit = True
            result.latency = cfg.llc.hit_latency + wait
            if is_write:
                state.dirty = True
            if sink.enabled:
                sink.emit(
                    DemandHit(
                        time=now,
                        core_id=core_id,
                        pc=pc,
                        block=block,
                        covered=result.covered,
                        late=result.late,
                    )
                )
        else:
            self._c_demand_misses.value += 1
            if sink.enabled:
                sink.emit(
                    DemandMiss(time=now, core_id=core_id, pc=pc, block=block)
                )
            dram_latency = self.dram.access(
                now + cfg.llc.hit_latency, block << self._block_bits
            )
            result.llc_miss = True
            result.latency = cfg.llc.hit_latency + dram_latency
            fill_state = BlockState(core_id=core_id, ready_time=now + result.latency)
            fill_state.used = True
            fill_state.dirty = is_write
            self.llc.fill(block, fill_state)

        # ---- train / trigger the prefetcher (LLC placement) ----
        if self.prefetchers and self.train_at == "llc":
            pf = self.prefetchers[core_id]
            info = AccessInfo(
                pc=pc,
                address=paddr,
                block=block,
                hit=hit,
                time=now,
                core_id=core_id,
                is_write=is_write,
            )
            requests = pf.clamp_degree(pf.on_access(info))
            if requests:
                result.prefetches_issued = self._issue_prefetches(
                    pf, core_id, block, requests, now + cfg.llc.hit_latency
                )
        return result

    # -- the prefetch path ----------------------------------------------------
    def _issue_prefetches(
        self,
        pf: Prefetcher,
        core_id: int,
        trigger_block: int,
        requests,
        issue_time: float,
    ) -> int:
        issued = 0
        sink = self.sink
        for req in requests:
            block = req.block
            if block < 0:
                # A delta/stride prefetcher extrapolated below address
                # zero; real hardware would squash the request.
                self._c_rejected.value += 1
                continue
            if block == trigger_block or self.llc.contains(block):
                self._c_redundant.value += 1
                continue
            latency = self.dram.access(
                issue_time, block << self._block_bits, is_prefetch=True
            )
            ready = issue_time + latency
            self.llc.fill(
                block, BlockState(prefetched=True, ready_time=ready, core_id=core_id)
            )
            pf.on_prefetch_fill(block, ready)
            self._c_prefetches_issued.value += 1
            issued += 1
            if sink.enabled:
                # The latency model materialises the fill at issue, so
                # the issue/fill pair is emitted back to back; replay
                # checks lean on the pairing, not the timestamps.
                sink.emit(
                    PrefetchIssued(
                        time=issue_time,
                        core_id=core_id,
                        address=block << self._block_bits,
                        block=block,
                        trigger_block=trigger_block,
                        ready_time=ready,
                    )
                )
                sink.emit(
                    PrefetchFill(
                        time=ready, core_id=core_id, block=block, ready_time=ready
                    )
                )
        return issued

    # -- end-of-run accounting ------------------------------------------------
    def finalize(self) -> None:
        """Count prefetched blocks still resident and unused at run end.

        These are neither covered misses nor (yet) overpredictions; the
        accuracy metric treats them as unused, matching the paper's
        "used before eviction" definition.
        """
        unused = 0
        for set_entries in self.llc._sets:
            for state in set_entries.values():
                if state.prefetched and not state.used:
                    unused += 1
        self._llc_stats.set("prefetch_unused_at_end", unused)
