"""Pluggable cache replacement: the policy zoo behind ``--replacement``.

:class:`repro.memsys.cache.Cache` is true-LRU by construction — each set
is an ``OrderedDict`` and ``popitem(last=False)`` *is* the policy.  That
is the right default (and the paper's configuration), but Bingo's
metadata lives in the cache it prefetches into: region residencies are
closed by LLC evictions and the prefetch-bit feedback depends on *which*
block gets victimised, so replacement must be a first-class axis to
stress.  This module extracts the policy decision into an explicit
interface and provides a zoo of implementations plus an OPT (Belady)
oracle as the upper-bound baseline.

The interface is *block-keyed*, not way-keyed (contrast
:mod:`repro.common.replacement`, which manages opaque way indices for
the generic tables): the cache model stores residency in per-set dicts,
so policies track recency/frequency state against block numbers and
return a victim *block*.  The contract, enforced by the conformance
suite (``tests/memsys/test_replacement_conformance.py``):

* ``touch(set_index, block)`` — the resident block was referenced
  (lookup hit, or a fill of an already-resident block);
* ``insert(set_index, block)`` — the block became resident;
* ``remove(set_index, block)`` — the block left the set (eviction of
  the policy's own victim, or an external invalidation);
* ``victim(set_index, incoming)`` — choose the block to evict; it MUST
  be currently resident in ``set_index``, and the choice must be a
  deterministic function of the call history (no wall-clock, no
  unseeded randomness).

``Cache.fill`` raises :class:`ReplacementError` when a policy returns a
non-resident victim, so a buggy policy fails loudly at the exact
eviction rather than corrupting occupancy accounting downstream.

Determinism matters doubly here: results must be bit-reproducible for
the executor's digest-addressed result cache, and the differential
suite replays runs event-for-event.

See ``docs/replacement.md`` for the design discussion, including how
the Belady oracle pre-scans packed trace arenas and why it is exact in
the standalone replay harness but an upper-bound *approximation* inside
the full L1-filtered hierarchy.
"""

from __future__ import annotations

from bisect import insort
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: "never referenced again" — sorts after every real next-use key
NEVER = float("inf")


class ReplacementError(RuntimeError):
    """A policy violated its contract (e.g. returned a non-resident victim)."""


class ReplacementPolicy:
    """Replacement state for one cache: ``num_sets`` independent sets.

    Subclasses override the four hooks below.  Policies own *only*
    ordering/frequency metadata — residency truth lives in the cache's
    per-set dicts, and the conformance suite cross-checks the two.
    """

    #: registry key; subclasses set it (used in reports and errors)
    name = "?"

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError(
                f"num_sets and ways must be positive, got {num_sets}x{ways}"
            )
        self.num_sets = num_sets
        self.ways = ways

    # -- the contract -------------------------------------------------------
    def touch(self, set_index: int, block: int) -> None:
        raise NotImplementedError

    def insert(self, set_index: int, block: int) -> None:
        raise NotImplementedError

    def remove(self, set_index: int, block: int) -> None:
        raise NotImplementedError

    def victim(self, set_index: int, incoming: int) -> int:
        """The block to evict from ``set_index`` to admit ``incoming``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.num_sets}x{self.ways}, "
            f"name={self.name!r})"
        )


class LruReplacement(ReplacementPolicy):
    """Least-recently-used via per-set ``OrderedDict`` recency order.

    Byte-identical to the cache model's built-in fast path: the same
    container, the same ``move_to_end`` on touches, and ``victim`` is
    the block ``popitem(last=False)`` would remove.  Registered twice —
    as ``lru`` (which the hierarchy maps to the zero-overhead built-in)
    and as ``lru-interface`` (forced through this interface), so the
    differential suite can prove the generic path changes nothing.
    """

    name = "lru"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._order: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(num_sets)
        ]

    def touch(self, set_index: int, block: int) -> None:
        self._order[set_index].move_to_end(block)

    def insert(self, set_index: int, block: int) -> None:
        self._order[set_index][block] = None

    def remove(self, set_index: int, block: int) -> None:
        self._order[set_index].pop(block, None)

    def victim(self, set_index: int, incoming: int) -> int:
        return next(iter(self._order[set_index]))


class FifoReplacement(ReplacementPolicy):
    """First-in-first-out: eviction order is insertion order.

    Touches do not refresh a block's position — that is the whole
    difference from LRU, and why FIFO suffers on reuse-heavy sets while
    matching LRU on pure streams (every block is touched once).
    """

    name = "fifo"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._order: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(num_sets)
        ]

    def touch(self, set_index: int, block: int) -> None:
        pass  # reuse does not delay a FIFO eviction

    def insert(self, set_index: int, block: int) -> None:
        entries = self._order[set_index]
        entries.pop(block, None)  # re-fill restarts the queue position
        entries[block] = None

    def remove(self, set_index: int, block: int) -> None:
        self._order[set_index].pop(block, None)

    def victim(self, set_index: int, incoming: int) -> int:
        return next(iter(self._order[set_index]))


class LfuReplacement(ReplacementPolicy):
    """Least-frequently-used with FIFO tie-breaking.

    Each resident block carries ``(references, arrival)``; the victim
    minimises references, oldest arrival first on ties — the classic
    deterministic LFU.  Frequency state dies with the block (no
    LFU-with-aging), which makes LFU maximally sticky: a block hot long
    ago survives long after it went cold.  That pathology is deliberate;
    the phase-change workloads exist to expose it.
    """

    name = "lfu"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        #: per set: block -> [references, arrival_sequence]
        self._meta: List[Dict[int, List[int]]] = [
            {} for _ in range(num_sets)
        ]
        self._arrivals = 0

    def touch(self, set_index: int, block: int) -> None:
        self._meta[set_index][block][0] += 1

    def insert(self, set_index: int, block: int) -> None:
        self._arrivals += 1
        self._meta[set_index][block] = [1, self._arrivals]

    def remove(self, set_index: int, block: int) -> None:
        self._meta[set_index].pop(block, None)

    def victim(self, set_index: int, incoming: int) -> int:
        meta = self._meta[set_index]
        return min(meta, key=lambda blk: (meta[blk][0], meta[blk][1]))


class ArcReplacement(ReplacementPolicy):
    """Adaptive Replacement Cache (Megiddo & Modha), one ARC per set.

    Residents split into ``T1`` (seen once) and ``T2`` (seen twice+);
    ghosts of recent evictions live in ``B1``/``B2``.  A hit in a ghost
    list steers the adaptation target ``p`` toward the list that would
    have kept the block — recency pressure grows ``p``, frequency
    pressure shrinks it.  ARC is normally described for one
    fully-associative cache; per-set instances with capacity ``ways``
    partition exactly like the hardware does.

    The cache drives the protocol in two calls: ``victim`` implements
    REPLACE (choose the T1/T2 LRU and remember it as a ghost), then
    ``insert`` files the incoming block (T2 on a ghost hit and adapts
    ``p``, T1 otherwise).
    """

    name = "arc"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        make = lambda: OrderedDict()  # noqa: E731 - four short aliases
        self._t1 = [make() for _ in range(num_sets)]
        self._t2 = [make() for _ in range(num_sets)]
        self._b1 = [make() for _ in range(num_sets)]
        self._b2 = [make() for _ in range(num_sets)]
        self._p = [0.0] * num_sets

    def touch(self, set_index: int, block: int) -> None:
        t1 = self._t1[set_index]
        t2 = self._t2[set_index]
        if block in t1:  # second reference promotes to the frequency side
            del t1[block]
            t2[block] = None
        elif block in t2:
            t2.move_to_end(block)

    def insert(self, set_index: int, block: int) -> None:
        c = self.ways
        t1, t2 = self._t1[set_index], self._t2[set_index]
        b1, b2 = self._b1[set_index], self._b2[set_index]
        if block in b1:
            # recency ghost hit: grow p, admit straight into T2
            self._p[set_index] = min(
                float(c), self._p[set_index] + max(1.0, len(b2) / len(b1))
            )
            del b1[block]
            t2[block] = None
        elif block in b2:
            # frequency ghost hit: shrink p, admit into T2
            self._p[set_index] = max(
                0.0, self._p[set_index] - max(1.0, len(b1) / len(b2))
            )
            del b2[block]
            t2[block] = None
        else:
            t1[block] = None
            # directory bound: |T1|+|B1| <= c, total directory <= 2c
            if len(t1) + len(b1) > c and b1:
                b1.popitem(last=False)
            while len(t1) + len(t2) + len(b1) + len(b2) > 2 * c and (b1 or b2):
                ghosts = b2 if b2 else b1
                ghosts.popitem(last=False)

    def remove(self, set_index: int, block: int) -> None:
        # external invalidation: drop without creating a ghost (the block
        # did not lose a capacity contest, so it must not steer p)
        self._t1[set_index].pop(block, None)
        self._t2[set_index].pop(block, None)

    def victim(self, set_index: int, incoming: int) -> int:
        t1, t2 = self._t1[set_index], self._t2[set_index]
        b1, b2 = self._b1[set_index], self._b2[set_index]
        p = self._p[set_index]
        prefer_t1 = bool(t1) and (
            len(t1) > p or (incoming in b2 and len(t1) == int(p))
        )
        if prefer_t1 or not t2:
            victim = next(iter(t1))
            del t1[victim]
            b1[victim] = None
        else:
            victim = next(iter(t2))
            del t2[victim]
            b2[victim] = None
        return victim


class TwoQReplacement(ReplacementPolicy):
    """The 2Q policy (Johnson & Shasha): A1in FIFO + ghost A1out + Am LRU.

    New blocks enter the short FIFO ``A1in``; only blocks re-referenced
    *after* falling out of it (their ghost still in ``A1out``) earn a
    place in the long-term LRU ``Am``.  One-touch scan traffic therefore
    washes through A1in without displacing the hot set — the scan
    resistance plain LRU lacks.  ``Kin``/``Kout`` follow the paper's
    rule of thumb (25 % of capacity in, 50 % of capacity remembered).
    """

    name = "2q"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self.kin = max(1, ways // 4)
        self.kout = max(1, ways // 2)
        self._a1in = [OrderedDict() for _ in range(num_sets)]
        self._a1out = [OrderedDict() for _ in range(num_sets)]
        self._am = [OrderedDict() for _ in range(num_sets)]

    def touch(self, set_index: int, block: int) -> None:
        am = self._am[set_index]
        if block in am:
            am.move_to_end(block)
        # a hit inside A1in deliberately does nothing: 2Q only promotes
        # on re-reference after A1in eviction (correlated references to
        # a just-fetched block are not evidence of long-term heat)

    def insert(self, set_index: int, block: int) -> None:
        a1out = self._a1out[set_index]
        if block in a1out:
            del a1out[block]
            self._am[set_index][block] = None
        else:
            self._a1in[set_index][block] = None

    def remove(self, set_index: int, block: int) -> None:
        self._a1in[set_index].pop(block, None)
        self._am[set_index].pop(block, None)

    def victim(self, set_index: int, incoming: int) -> int:
        a1in = self._a1in[set_index]
        am = self._am[set_index]
        if len(a1in) >= self.kin and a1in or not am:
            victim = next(iter(a1in))
            del a1in[victim]
            a1out = self._a1out[set_index]
            a1out[victim] = None
            while len(a1out) > self.kout:
                a1out.popitem(last=False)
        else:
            victim = next(iter(am))
            del am[victim]
        return victim


# ---------------------------------------------------------------------------
# OPT (Belady) and its oracles
# ---------------------------------------------------------------------------


class SequenceOracle:
    """Exact next-use oracle over a fully known block sequence.

    Used by :func:`replay_trace`, where the whole reference stream is in
    hand: occurrence positions are indexed up front, ``observe`` consumes
    them strictly in order, and ``next_use`` is the literal index of the
    block's next reference.  With this oracle Belady's MIN is *optimal*
    per set (each set sees an independent substream at full capacity
    ``ways``), which is exactly what the hypothesis dominance property
    asserts.
    """

    def __init__(self, blocks: Iterable[int]) -> None:
        occ: Dict[int, List[int]] = {}
        for position, block in enumerate(blocks):
            occ.setdefault(block, []).append(position)
        self._occ = occ
        self._cursor: Dict[int, int] = {}

    def observe(self, block: int) -> None:
        """Consume the block's current occurrence (called once per access)."""
        self._cursor[block] = self._cursor.get(block, 0) + 1

    def next_use(self, block: int) -> float:
        positions = self._occ.get(block)
        if positions is None:
            return NEVER
        cursor = self._cursor.get(block, 0)
        return positions[cursor] if cursor < len(positions) else NEVER


class TraceOracle:
    """Next-use oracle pre-scanned from a compiled workload's packed arenas.

    The full simulator cannot know its exact future LLC reference stream
    (L1 filtering and MSHR merges depend on timing), but it *can* know
    the program's: one pass over the packed per-core address arrays
    yields every future reference to every virtual block.  Per-core
    record indices are interleaved into a single global key
    (``record_index * num_cores + core_id`` — cores dispatch at equal
    intervals, so index order is the scalar heap's order to first
    approximation), and physical blocks are resolved back to
    ``(core, virtual block)`` through the translator's frame-owner
    inverse, which random first-touch allocation keeps injective.

    ``observe`` is called for every LLC demand access; it advances a
    monotone clock to the consumed occurrence's key, lazily skipping
    occurrences that never reached the LLC (L1 hits, MSHR merges).
    ``next_use`` is the first occurrence strictly after the clock —
    i.e. Belady over the *program* stream, an upper-bound heuristic for
    the filtered stream (see docs/replacement.md for why the distinction
    is immaterial in the standalone optimality proof and minor here).
    """

    def __init__(self, workload, system) -> None:
        amap = system.address_map
        self._block_bits = amap.block_bits
        self._page_block_bits = amap.page_bits - amap.block_bits
        self._offset_mask = (1 << self._page_block_bits) - 1
        self._translator = None  # bound by the hierarchy via attach()
        num_cores = workload.num_cores
        occ: Dict[Tuple[int, int], List[int]] = {}
        block_bits = self._block_bits
        for core_id in range(num_cores):
            arena = workload.packed(core_id)
            addresses = arena.addresses
            flags = arena.flags
            for index in range(arena.records):
                if flags[index]:
                    vblock = addresses[index] >> block_bits
                    occ.setdefault((core_id, vblock), []).append(
                        index * num_cores + core_id
                    )
        self._occ = occ
        self._cursor: Dict[Tuple[int, int], int] = {}
        self._clock = -1

    def attach(self, translator) -> None:
        """Bind the live translator (supplies the frame-owner inverse)."""
        self._translator = translator

    def _resolve(self, block: int) -> Optional[Tuple[int, int]]:
        frame = block >> self._page_block_bits
        owner = self._translator.frame_owner(frame)
        if owner is None:
            return None
        core_id, vpage = owner
        return core_id, (vpage << self._page_block_bits) | (
            block & self._offset_mask
        )

    def _advance(self, key: Optional[Tuple[int, int]]) -> Tuple[list, int]:
        positions = self._occ.get(key, ())
        cursor = self._cursor.get(key, 0)
        clock = self._clock
        while cursor < len(positions) and positions[cursor] <= clock:
            cursor += 1
        if key is not None:
            self._cursor[key] = cursor
        return positions, cursor

    def observe(self, block: int) -> None:
        """One LLC demand access to ``block``: consume its occurrence."""
        key = self._resolve(block)
        if key is None:
            return
        positions, cursor = self._advance(key)
        if cursor < len(positions):
            self._clock = positions[cursor]
            self._cursor[key] = cursor + 1

    def next_use(self, block: int) -> float:
        key = self._resolve(block)
        if key is None:
            return NEVER
        positions, cursor = self._advance(key)
        return positions[cursor] if cursor < len(positions) else NEVER


class BeladyReplacement(ReplacementPolicy):
    """OPT: evict the resident block referenced farthest in the future.

    Needs an oracle (:class:`SequenceOracle` or :class:`TraceOracle`)
    for ``next_use``; without one every block reads as never-used-again
    and the policy degrades to FIFO order — still a valid (if pointless)
    policy, which keeps the conformance suite able to instantiate it
    uniformly.  Ties (including multiple never-again blocks) break
    toward the oldest insertion, deterministically.
    """

    name = "opt"

    def __init__(self, num_sets: int, ways: int, oracle=None) -> None:
        super().__init__(num_sets, ways)
        self.oracle = oracle
        self._order: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(num_sets)
        ]

    def touch(self, set_index: int, block: int) -> None:
        pass  # the oracle, not recency, carries all the information

    def insert(self, set_index: int, block: int) -> None:
        self._order[set_index][block] = None

    def remove(self, set_index: int, block: int) -> None:
        self._order[set_index].pop(block, None)

    def victim(self, set_index: int, incoming: int) -> int:
        oracle = self.oracle
        best = None
        best_key = -1.0
        for block in self._order[set_index]:
            key = oracle.next_use(block) if oracle is not None else NEVER
            if key > best_key:  # strict: first-inserted wins ties
                best = block
                best_key = key
                if key == NEVER:
                    break  # nothing sorts after "never again"
        if best is None:  # pragma: no cover - empty set is a cache bug
            raise ReplacementError(f"victim() on empty set {set_index}")
        return best


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: policies selectable by name everywhere a ``replacement=`` knob exists.
#: ``lru`` is special-cased by the hierarchy to the cache model's native
#: OrderedDict fast path; ``lru-interface`` is the same policy forced
#: through this module's interface (differential testing).
_REGISTRY: Dict[str, Callable[..., ReplacementPolicy]] = {
    "lru": LruReplacement,
    "lru-interface": LruReplacement,
    "fifo": FifoReplacement,
    "lfu": LfuReplacement,
    "arc": ArcReplacement,
    "2q": TwoQReplacement,
    "opt": BeladyReplacement,
}


def available_replacements() -> List[str]:
    """All registered policy names, sorted."""
    return sorted(_REGISTRY)


def register_replacement(
    name: str, factory: Callable[..., ReplacementPolicy], replace: bool = False
) -> None:
    """Register a custom policy under ``name`` (for plugins and tests)."""
    key = name.lower()
    if not replace and key in _REGISTRY:
        raise ValueError(f"replacement policy {name!r} is already registered")
    _REGISTRY[key] = factory


def make_replacement(
    name: str, num_sets: int, ways: int, oracle=None
) -> ReplacementPolicy:
    """Construct a replacement policy by registry name.

    ``oracle`` is consumed by ``opt`` (and ignored by heuristics): the
    engine builds a :class:`TraceOracle` from the compiled workload and
    threads it through here.
    """
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"available: {available_replacements()}"
        ) from None
    if factory is BeladyReplacement:
        return BeladyReplacement(num_sets, ways, oracle=oracle)
    return factory(num_sets, ways)


# ---------------------------------------------------------------------------
# Standalone replay harness
# ---------------------------------------------------------------------------


class ReplayStats:
    """Counters from one :func:`replay_trace` run."""

    __slots__ = ("accesses", "hits", "misses", "evictions", "victims")

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: victim blocks in eviction order (conformance/differential use)
        self.victims: List[int] = []

    def __repr__(self) -> str:
        return (
            f"ReplayStats(accesses={self.accesses}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )


def replay_trace(
    blocks: Iterable[int],
    num_sets: int,
    ways: int,
    policy: str = "lru",
) -> ReplayStats:
    """Replay a block reference stream through one demand-fill cache level.

    This is the policy zoo's proving ground: a plain set-associative
    cache with no timing, no prefetching, and no upper level — the
    setting where Belady's MIN theorem actually applies.  ``policy``
    names a registry entry; ``"opt"`` gets an exact
    :class:`SequenceOracle` built from the full stream, so its miss
    count lower-bounds every other policy's on the same stream and
    geometry (the hypothesis suite holds the zoo to exactly that).
    """
    blocks = list(blocks)
    oracle = SequenceOracle(blocks) if policy.lower() == "opt" else None
    engine = make_replacement(policy, num_sets, ways, oracle=oracle)
    mask = num_sets - 1
    if num_sets & mask:
        raise ValueError(f"num_sets must be a power of two, got {num_sets}")
    resident: List[set] = [set() for _ in range(num_sets)]
    stats = ReplayStats()
    for block in blocks:
        set_index = block & mask
        if oracle is not None:
            oracle.observe(block)
        stats.accesses += 1
        entries = resident[set_index]
        if block in entries:
            stats.hits += 1
            engine.touch(set_index, block)
            continue
        stats.misses += 1
        if len(entries) >= ways:
            victim = engine.victim(set_index, block)
            if victim not in entries:
                raise ReplacementError(
                    f"{engine.name}: victim {victim:#x} is not resident "
                    f"in set {set_index}"
                )
            entries.remove(victim)
            engine.remove(set_index, victim)
            stats.evictions += 1
            stats.victims.append(victim)
        entries.add(block)
        engine.insert(set_index, block)
    return stats


__all__ = [
    "NEVER",
    "ArcReplacement",
    "BeladyReplacement",
    "FifoReplacement",
    "LfuReplacement",
    "LruReplacement",
    "ReplacementError",
    "ReplacementPolicy",
    "ReplayStats",
    "SequenceOracle",
    "TraceOracle",
    "TwoQReplacement",
    "available_replacements",
    "make_replacement",
    "register_replacement",
    "replay_trace",
]
