"""A fast set-associative cache with prefetch-aware block metadata.

This is the performance-critical inner loop of the simulator, so the
implementation is bespoke rather than reusing the generic
:class:`repro.common.table.SetAssociativeTable`: each set is an
``OrderedDict`` keyed by block number, giving O(1) hit, fill, and true-LRU
eviction via ``move_to_end``/``popitem``.

Block metadata carries what the evaluation needs:

* ``prefetched`` / ``used`` — to classify demand hits on prefetched blocks
  (covered misses) and unused evicted prefetches (overpredictions);
* ``ready_time`` — fill-completion cycle, so a demand access arriving
  before an in-flight prefetch completes pays the *remaining* latency
  (a "late prefetch").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator, Optional, Tuple

from repro.common.config import CacheConfig
from repro.common.stats import StatGroup
from repro.memsys.replacement import ReplacementError, ReplacementPolicy
from repro.obs.events import Eviction
from repro.obs.sinks import NULL_SINK, TraceSink


class BlockState:
    """Metadata of one resident cache block."""

    __slots__ = ("prefetched", "used", "ready_time", "core_id", "dirty")

    def __init__(
        self,
        prefetched: bool = False,
        ready_time: float = 0.0,
        core_id: int = 0,
    ) -> None:
        self.prefetched = prefetched
        self.used = False
        self.ready_time = ready_time
        self.core_id = core_id
        self.dirty = False

    def __repr__(self) -> str:
        kind = "prefetched" if self.prefetched else "demand"
        return f"BlockState({kind}, used={self.used}, ready={self.ready_time})"


EvictionCallback = Callable[[int, BlockState], None]


class Cache:
    """Set-associative, true-LRU cache over block numbers.

    The cache is indexed by *block number* (byte address >> 6); the caller
    does the shifting once via :class:`repro.common.addresses.AddressMap`.
    An optional ``on_evict(block, state)`` callback lets the hierarchy
    notify prefetchers of end-of-residency events (Bingo and SMS train on
    them) and count overpredictions.

    With ``policy=None`` (the default) the set's ``OrderedDict`` order *is*
    the policy — true LRU with zero extra bookkeeping, the original inner
    loop untouched.  Passing a :class:`ReplacementPolicy` routes victim
    choice through its ``victim()`` hook instead and mirrors every
    residency change into it; the policy's contract (resident victims,
    determinism) is documented in :mod:`repro.memsys.replacement`.
    """

    def __init__(
        self,
        config: CacheConfig,
        name: str = "cache",
        on_evict: Optional[EvictionCallback] = None,
        stats: Optional[StatGroup] = None,
        sink: TraceSink = NULL_SINK,
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        self.config = config
        self.name = name
        self.on_evict = on_evict
        self.stats = stats if stats is not None else StatGroup(name)
        # end-of-residency trace events; NULL_SINK keeps the eviction
        # path at one attribute check when observability is off
        self.sink = sink if sink is not None else NULL_SINK
        self.num_sets = config.sets
        self.ways = config.ways
        self._set_mask = self.num_sets - 1
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        if policy is not None and (
            policy.num_sets != self.num_sets or policy.ways != self.ways
        ):
            raise ValueError(
                f"{name}: policy geometry {policy.num_sets}x{policy.ways} "
                f"does not match cache geometry {self.num_sets}x{self.ways}"
            )
        self.policy = policy
        # fast-path counter cells: fills/evictions run once per miss
        self._fills = self.stats.counter("fills")
        self._evictions = self.stats.counter("evictions")
        self._invalidations = self.stats.counter("invalidations")

    # -- indexing ---------------------------------------------------------
    def set_index(self, block: int) -> int:
        return block & self._set_mask

    # -- lookups -----------------------------------------------------------
    def lookup(self, block: int, touch: bool = True) -> Optional[BlockState]:
        """Return the block's state on a hit (updating LRU), else None."""
        entries = self._sets[block & self._set_mask]
        state = entries.get(block)
        if state is not None and touch:
            entries.move_to_end(block)
            if self.policy is not None:
                self.policy.touch(block & self._set_mask, block)
        return state

    def contains(self, block: int) -> bool:
        return block in self._sets[block & self._set_mask]

    # -- fills / evictions -----------------------------------------------------
    def fill(
        self, block: int, state: BlockState
    ) -> Optional[Tuple[int, BlockState]]:
        """Insert ``block``; returns the evicted ``(block, state)`` if any.

        Filling a block that is already resident replaces its state (this
        happens when a demand miss races an in-flight prefetch; the caller
        is expected to check first, but the behaviour is well defined).
        """
        set_index = block & self._set_mask
        entries = self._sets[set_index]
        policy = self.policy
        if block in entries:
            entries[block] = state
            entries.move_to_end(block)
            if policy is not None:
                policy.touch(set_index, block)
            return None
        victim = None
        if len(entries) >= self.ways:
            if policy is None:
                victim_block, victim_state = entries.popitem(last=False)
            else:
                victim_block = policy.victim(set_index, block)
                victim_state = entries.pop(victim_block, None)
                if victim_state is None:
                    raise ReplacementError(
                        f"{self.name}/{policy.name}: victim "
                        f"{victim_block:#x} is not resident in set "
                        f"{set_index} (residents: "
                        f"{sorted(entries)})"
                    )
                policy.remove(set_index, victim_block)
            victim = (victim_block, victim_state)
            self._evictions.value += 1
            if self.sink.enabled:
                self.sink.emit(
                    Eviction(
                        cache=self.name,
                        block=victim_block,
                        prefetched=victim_state.prefetched,
                        used=victim_state.used,
                    )
                )
            if self.on_evict is not None:
                self.on_evict(victim_block, victim_state)
        entries[block] = state
        if policy is not None:
            policy.insert(set_index, block)
        self._fills.value += 1
        return victim

    def invalidate(self, block: int) -> Optional[BlockState]:
        """Remove ``block`` if resident; fires the eviction callback."""
        entries = self._sets[block & self._set_mask]
        state = entries.pop(block, None)
        if state is not None:
            if self.policy is not None:
                self.policy.remove(block & self._set_mask, block)
            self._invalidations.value += 1
            if self.sink.enabled:
                self.sink.emit(
                    Eviction(
                        cache=self.name,
                        block=block,
                        prefetched=state.prefetched,
                        used=state.used,
                    )
                )
            if self.on_evict is not None:
                self.on_evict(block, state)
        return state

    # -- state export (vectorized miss path) -------------------------------
    def export_set(self, set_index: int) -> Tuple[int, ...]:
        """The set's resident blocks in LRU→MRU order.

        A read-only snapshot for array mirrors (the vectorized tier's
        batched tag-membership classification); the ``OrderedDict``
        order *is* native-LRU recency, oldest first.
        """
        return tuple(self._sets[set_index].keys())

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def occupancy(self) -> float:
        return len(self) / (self.num_sets * self.ways)

    def resident_blocks(self) -> Iterator[int]:
        for entries in self._sets:
            yield from entries.keys()
