"""The memory-system substrate: caches, DRAM, translation, hierarchy.

This is the stand-in for the paper's ChampSim infrastructure: a fast,
functional-with-timing model of a multi-core hierarchy (private L1Ds over a
shared LLC over banked, bandwidth-limited DRAM).  Prefetchers attach at the
LLC exactly as in Section V of the paper.
"""

from repro.memsys.cache import BlockState, Cache
from repro.memsys.dram import DramModel
from repro.memsys.hierarchy import AccessResult, MemoryHierarchy
from repro.memsys.mshr import MshrFile
from repro.memsys.replacement import (
    ReplacementError,
    ReplacementPolicy,
    available_replacements,
    make_replacement,
    replay_trace,
)
from repro.memsys.translation import RandomFirstTouchTranslator

__all__ = [
    "BlockState",
    "Cache",
    "DramModel",
    "AccessResult",
    "MemoryHierarchy",
    "MshrFile",
    "RandomFirstTouchTranslator",
    "ReplacementError",
    "ReplacementPolicy",
    "available_replacements",
    "make_replacement",
    "replay_trace",
]
