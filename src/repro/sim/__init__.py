"""Trace-driven multi-core simulation: engine, executor, runner API, results."""

from repro.sim.engine import SimulationEngine, SimulationParams
from repro.sim.executor import Executor, ResultCache, SimJob, execute_job
from repro.sim.results import SimResult, speedup
from repro.sim.runner import compare_prefetchers, run_simulation

__all__ = [
    "SimulationEngine",
    "SimulationParams",
    "Executor",
    "ResultCache",
    "SimJob",
    "execute_job",
    "SimResult",
    "speedup",
    "compare_prefetchers",
    "run_simulation",
]
