"""Trace-driven multi-core simulation: engine, runner API, results."""

from repro.sim.engine import SimulationEngine, SimulationParams
from repro.sim.results import SimResult, speedup
from repro.sim.runner import compare_prefetchers, run_simulation

__all__ = [
    "SimulationEngine",
    "SimulationParams",
    "SimResult",
    "speedup",
    "compare_prefetchers",
    "run_simulation",
]
