"""Parameter sweeps (Fig. 6 and the ablation benches)."""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.common.config import SystemConfig
from repro.sim.executor import Executor, ResultCache, SimJob
from repro.sim.results import SimResult
from repro.sim.runner import run_simulation
from repro.workloads.base import Workload


def expand_grid(
    axes: Mapping[str, Sequence[object]]
) -> List[Dict[str, object]]:
    """Cartesian product of named value axes, in deterministic order.

    ``{"degree": [1, 2], "threshold": [0.2]}`` expands to
    ``[{"degree": 1, "threshold": 0.2}, {"degree": 2, "threshold": 0.2}]``;
    axes iterate in insertion order with the *last* axis varying fastest
    (odometer order), so grids enumerate reproducibly everywhere — the
    fixed-grid sweeps here and the adaptive search in
    :mod:`repro.serve.orchestrate` agree on point indices.  An empty
    axis mapping is one empty combination; an empty *axis* is an error
    (it would silently produce zero points).
    """
    names = list(axes)
    for name in names:
        if not list(axes[name]):
            raise ValueError(f"grid axis {name!r} has no values")
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(list(axes[name]) for name in names))
    ]


def sweep_prefetcher_parameter(
    workload: Union[str, Workload],
    prefetcher: str,
    parameter: str,
    values: Iterable,
    base_kwargs: Optional[dict] = None,
    system: Optional[SystemConfig] = None,
    instructions_per_core: int = 100_000,
    warmup_instructions: int = 20_000,
    seed: int = 1234,
    scale: float = 1.0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[Executor] = None,
    compile: bool = True,
    vectorized: bool = True,
    replacement: str = "lru",
) -> Dict[object, SimResult]:
    """Run the same (workload, prefetcher) across values of one parameter.

    Used for the Fig. 6 history-size sweep
    (``parameter="history_entries"``) and the vote-threshold / region-size
    ablations.  Returns ``{value: SimResult}`` in input order.

    The sweep points are independent, so they route through a
    :class:`repro.sim.executor.Executor`: pass ``workers`` (and optionally
    ``cache``) or a pre-built ``executor`` to fan out / memoise.  A
    ``Workload`` *instance* pins the sweep to the in-process serial path
    (instances are not portable across worker processes); pass the
    workload name to parallelise.

    All sweep points share one workload trace, so with ``compile`` on
    (the default) it is packed once — via the on-disk compiled-trace
    cache for named workloads, in-memory for instances — and every
    point replays the arena instead of re-draining the generators.
    """
    values = list(values)
    if not isinstance(workload, str):
        if compile:
            from repro.sim.compile import compile_workload

            workload = compile_workload(
                workload, records_per_core=instructions_per_core
            )
        results: Dict[object, SimResult] = {}
        for value in values:
            kwargs = dict(base_kwargs or {})
            kwargs[parameter] = value
            results[value] = run_simulation(
                workload,
                prefetcher=prefetcher,
                system=system,
                instructions_per_core=instructions_per_core,
                warmup_instructions=warmup_instructions,
                seed=seed,
                scale=scale,
                prefetcher_kwargs=kwargs,
                vectorized=vectorized,
                replacement=replacement,
            )
        return results

    jobs = []
    for value in values:
        kwargs = dict(base_kwargs or {})
        kwargs[parameter] = value
        jobs.append(
            SimJob.build(
                workload,
                prefetcher=prefetcher,
                system=system,
                instructions_per_core=instructions_per_core,
                warmup_instructions=warmup_instructions,
                seed=seed,
                scale=scale,
                prefetcher_kwargs=kwargs,
                compile=compile,
                vectorized=vectorized,
                replacement=replacement,
            )
        )
    if executor is None:
        executor = Executor(workers=workers, cache=cache)
    return dict(zip(values, executor.run_jobs(jobs)))
