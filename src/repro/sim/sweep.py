"""Parameter sweeps (Fig. 6 and the ablation benches)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.common.config import SystemConfig
from repro.sim.results import SimResult
from repro.sim.runner import run_simulation
from repro.workloads.base import Workload


def sweep_prefetcher_parameter(
    workload: Union[str, Workload],
    prefetcher: str,
    parameter: str,
    values: Iterable,
    base_kwargs: Optional[dict] = None,
    system: Optional[SystemConfig] = None,
    instructions_per_core: int = 100_000,
    warmup_instructions: int = 20_000,
    seed: int = 1234,
    scale: float = 1.0,
) -> Dict[object, SimResult]:
    """Run the same (workload, prefetcher) across values of one parameter.

    Used for the Fig. 6 history-size sweep
    (``parameter="history_entries"``) and the vote-threshold / region-size
    ablations.  Returns ``{value: SimResult}`` in input order.
    """
    results: Dict[object, SimResult] = {}
    for value in values:
        kwargs = dict(base_kwargs or {})
        kwargs[parameter] = value
        results[value] = run_simulation(
            workload,
            prefetcher=prefetcher,
            system=system,
            instructions_per_core=instructions_per_core,
            warmup_instructions=warmup_instructions,
            seed=seed,
            scale=scale,
            prefetcher_kwargs=kwargs,
        )
    return results
