"""Simulation results and the paper's derived metrics.

Metric definitions follow the paper exactly:

* **coverage** (Fig. 7) — fraction of would-be misses eliminated:
  ``covered / (covered + remaining demand misses)``.  A *covered miss* is
  a demand access served by a prefetched block's first use (including
  late in-flight prefetches, which still hide most of the latency).
* **accuracy** (Figs. 2/3) — fraction of issued prefetches that were used
  before eviction: ``covered / prefetches issued``.
* **overprediction** (Fig. 7) — incorrect prefetches *normalised to the
  baseline miss count* (footnote 9: not the same as 1 − accuracy):
  ``unused evicted prefetches / (covered + remaining demand misses)``.
* **speedup** (Fig. 8) — system throughput (sum of per-core IPCs for the
  measured instruction window) relative to a no-prefetcher baseline run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List


@dataclass
class CoreResult:
    """One core's measured window."""

    instructions: int
    cycles: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class SimResult:
    """Everything one simulation run produced (measurement window only)."""

    workload: str
    prefetcher: str
    cores: List[CoreResult]
    # LLC counters (deltas over the measurement window)
    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    covered: int = 0
    late_covered: int = 0
    prefetches_issued: int = 0
    redundant_prefetches: int = 0
    overpredictions: int = 0
    prefetch_unused_at_end: int = 0
    dram_reads: int = 0
    dram_row_hits: int = 0
    prefetcher_storage_bits: int = 0
    #: measurement-window deltas of the prefetcher's own counters
    #: (triggers, lookup_hits, commits, ...), aggregated over cores
    prefetcher_counters: Dict[str, float] = field(default_factory=dict)
    #: cumulative stat samples taken every ``timeline_interval`` retired
    #: instructions (see :mod:`repro.obs.timeline`); empty when disabled
    timeline: List[Dict[str, object]] = field(default_factory=list)
    raw_stats: Dict[str, object] = field(default_factory=dict)

    def prefetcher_ratio(self, numerator: str, denominator: str) -> float:
        """Safe ratio of two prefetcher counters (e.g. match probability)."""
        denom = self.prefetcher_counters.get(denominator, 0)
        return self.prefetcher_counters.get(numerator, 0) / denom if denom else 0.0

    # -- throughput ---------------------------------------------------------
    @property
    def instructions(self) -> int:
        return sum(core.instructions for core in self.cores)

    @property
    def throughput(self) -> float:
        """System throughput: sum of per-core IPCs."""
        return sum(core.ipc for core in self.cores)

    # -- the paper's metrics ----------------------------------------------------
    @property
    def baseline_miss_estimate(self) -> int:
        """Would-be misses without prefetching: covered + still-missing."""
        return self.covered + self.demand_misses

    @property
    def coverage(self) -> float:
        base = self.baseline_miss_estimate
        return self.covered / base if base else 0.0

    @property
    def accuracy(self) -> float:
        """Used-before-eviction fraction of issued prefetches.

        Clamped to 1.0: prefetches issued during warm-up can be consumed
        during measurement, so the windowed ratio can slightly exceed one
        on mostly-resident workloads.
        """
        issued = self.prefetches_issued
        return min(1.0, self.covered / issued) if issued else 0.0

    @property
    def accuracy_settled(self) -> float:
        """Accuracy over prefetches whose fate was *decided* in-window.

        Prefetched blocks still resident and unused when the measurement
        window closes have been neither used nor wasted yet; for rare,
        late-firing predictors (e.g. a PC+Address-only prefetcher, Fig. 2)
        they can dominate the issued count in short windows and drown the
        signal.  This variant excludes them from the denominator.
        """
        decided = self.prefetches_issued - self.prefetch_unused_at_end
        return min(1.0, self.covered / decided) if decided > 0 else 0.0

    @property
    def overprediction(self) -> float:
        base = self.baseline_miss_estimate
        return self.overpredictions / base if base else 0.0

    @property
    def row_activations(self) -> int:
        """DRAM row activations — the energy proxy of Section II.

        An accurate spatial prefetcher fetches a whole footprint out of
        one open row, so activations *per block fetched* drop even as
        total traffic rises (the BuMP argument the paper cites).
        """
        return self.dram_reads - self.dram_row_hits

    @property
    def activations_per_kilo_instruction(self) -> float:
        instr = self.instructions
        return self.row_activations / instr * 1000 if instr else 0.0

    @property
    def mpki(self) -> float:
        """LLC demand misses per kilo-instruction (Table II's metric)."""
        instr = self.instructions
        return self.demand_misses / instr * 1000 if instr else 0.0

    @property
    def baseline_mpki_estimate(self) -> float:
        instr = self.instructions
        return self.baseline_miss_estimate / instr * 1000 if instr else 0.0

    def timeline_curves(self) -> List[Dict[str, float]]:
        """Per-interval IPC/MPKI/coverage/accuracy rows (whole run).

        Empty unless the run sampled a timeline
        (``ObservabilityConfig(timeline_interval=N)``).  Intervals span
        warm-up and measurement alike — that is the point: the curves
        show *phases*, where the headline metrics show the window.
        """
        from repro.obs.timeline import timeline_curves

        return timeline_curves(self.timeline)

    def summary(self) -> Dict[str, float]:
        """The numbers every report prints, in one flat dict."""
        return {
            "throughput": self.throughput,
            "mpki": self.mpki,
            "coverage": self.coverage,
            "accuracy": self.accuracy,
            "overprediction": self.overprediction,
            "prefetches_issued": float(self.prefetches_issued),
        }

    # -- (de)serialisation --------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-compatible deep copy (the executor's cache format).

        ``json.dump``/``load`` round-trips Python floats exactly (repr
        based), so a cached result is bit-identical to the original run.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimResult":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        known = {f.name for f in fields(cls)}
        payload = {key: value for key, value in data.items() if key in known}
        payload["cores"] = [
            CoreResult(**core) for core in payload.get("cores", [])
        ]
        return cls(**payload)


def speedup(result: SimResult, baseline: SimResult) -> float:
    """Throughput of ``result`` over ``baseline`` (Fig. 8's y-axis + 1)."""
    if baseline.throughput == 0:
        raise ValueError("baseline run has zero throughput")
    return result.throughput / baseline.throughput


def measured_coverage_vs_baseline(
    result: SimResult, baseline: SimResult
) -> float:
    """Coverage computed against an *actual* baseline run's miss count.

    Cross-checks the per-run estimate; the two agree when prefetching
    does not perturb which demand accesses occur (it never does — only
    their latency), modulo cache-contents divergence.
    """
    if baseline.demand_misses == 0:
        return 0.0
    eliminated = baseline.demand_misses - result.demand_misses
    return eliminated / baseline.demand_misses
