"""Compiled trace pipeline: pack workload streams once, replay many.

The evaluation matrix runs every workload under ~7 prefetcher configs;
regenerating the instruction stream through Python generators for each
cell dominated wall-clock.  This package compiles a workload's per-core
generators *once* into packed flat arrays (``array('Q')`` pc/address
words plus one flag byte per record), caches the arenas on disk keyed by
the full trace identity, and hands the engine a
:class:`~repro.sim.compile.workload.CompiledWorkload` it can replay
either through the general loop (exact ``Workload`` contract) or through
the allocation-free fast path (``SimulationEngine._run_until_compiled``).

See ``docs/performance.md`` for the cache layout, invalidation keys, and
when the fast path engages.
"""

from repro.sim.compile.cache import TraceCache, compile_counters, trace_key
from repro.sim.compile.packed import (
    PACK_FORMAT,
    PackedCoreTrace,
    pack_finite,
    pack_records,
)
from repro.sim.compile.workload import (
    CompiledWorkload,
    compile_trace_files,
    compile_workload,
    write_compiled_trace,
)

__all__ = [
    "PACK_FORMAT",
    "PackedCoreTrace",
    "TraceCache",
    "CompiledWorkload",
    "compile_counters",
    "compile_trace_files",
    "compile_workload",
    "pack_finite",
    "pack_records",
    "trace_key",
    "write_compiled_trace",
]
