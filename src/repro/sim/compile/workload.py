"""Compiling workloads into replayable packed traces.

:func:`compile_workload` drains a :class:`~repro.workloads.base.Workload`
once — every core generator, exactly the requested number of records —
into per-core packed arenas, consulting (and populating) the on-disk
:class:`~repro.sim.compile.cache.TraceCache` when the caller supplies
the trace's full identity (the workload ``scale``; a bare ``Workload``
object does not record it, so identity-less compiles stay in-memory).

The result, a :class:`CompiledWorkload`, satisfies the ``Workload``
contract (``name`` / ``num_cores`` / ``core_stream``) for every existing
caller — checkers, golden-trace recorders, the general engine loop —
while additionally exposing the raw arenas through :meth:`packed` for
the engine's specialised fast path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.cpu.trace import TraceRecord
from repro.sim.compile.cache import (
    TraceCache,
    _count,
    key_digest,
    logger,
    trace_key,
)
from repro.sim.compile.packed import PackedCoreTrace, pack_finite, pack_records
from repro.workloads.base import Workload

#: per-process memo of mmap-backed arenas, keyed by trace digest, so a
#: serial sweep pays the file open exactly once
_MEMO: Dict[str, List[PackedCoreTrace]] = {}


class CompiledWorkload:
    """A workload whose streams replay packed arenas instead of generators.

    Satisfies the ``Workload`` duck type (``name``, ``num_cores``,
    ``core_stream``); :meth:`core_stream` decodes records lazily so any
    general-path consumer sees the exact source stream.  The engine's
    fast path bypasses decoding entirely via :meth:`packed`.

    Compiled streams are *finite* — exactly ``records_per_core`` long —
    unlike generator workloads; replaying past the end raises with the
    compiled length in the message.
    """

    def __init__(
        self,
        name: str,
        cores: Sequence[PackedCoreTrace],
        seed: int = 1234,
        description: str = "",
        paper_mpki: Optional[float] = None,
    ) -> None:
        if not cores:
            raise ValueError("need at least one compiled core trace")
        lengths = {core.records for core in cores}
        if len(lengths) != 1:
            raise ValueError(
                f"cores disagree on trace length: {sorted(lengths)}"
            )
        self.name = name
        self.seed = seed
        self.description = description
        self.paper_mpki = paper_mpki
        self._cores = list(cores)

    @property
    def num_cores(self) -> int:
        return len(self._cores)

    @property
    def records_per_core(self) -> int:
        return self._cores[0].records

    def packed(self, core_id: int) -> PackedCoreTrace:
        """One core's raw arena (the engine fast path's input)."""
        return self._cores[core_id]

    def core_stream(self, core_id: int) -> Iterator[TraceRecord]:
        """Decode one core's records (the general ``Workload`` contract)."""
        try:
            core = self._cores[core_id]
        except IndexError:
            raise ValueError(
                f"compiled workload {self.name!r} has no stream for core "
                f"{core_id}; cores available: {list(range(self.num_cores))}"
            ) from None
        yield from core.decode()
        raise RuntimeError(
            f"compiled trace for {self.name!r} core {core_id} exhausted "
            f"after {core.records} records; compile with a larger "
            f"records_per_core for longer runs"
        )


def compile_workload(
    workload: Workload,
    records_per_core: int,
    scale: Optional[float] = None,
    cache: Optional[TraceCache] = None,
) -> CompiledWorkload:
    """Compile a workload's generators into a :class:`CompiledWorkload`.

    ``records_per_core`` must cover the run's per-core instruction
    budget (the engine consumes exactly one record per retired
    instruction).  ``scale`` is the workload's footprint scale — part of
    the trace identity a ``Workload`` object does not carry.  When it is
    provided, the compiled arena is served from / stored to the on-disk
    ``cache`` (default: :class:`TraceCache` under ``$REPRO_CACHE_DIR``);
    when it is ``None`` the compile is in-memory only, because a cache
    entry that ignored scale could serve the wrong trace.
    """
    if records_per_core <= 0:
        raise ValueError(
            f"records_per_core must be positive, got {records_per_core}"
        )
    if isinstance(workload, CompiledWorkload):
        if workload.records_per_core < records_per_core:
            raise ValueError(
                f"workload {workload.name!r} is already compiled for "
                f"{workload.records_per_core} records/core; "
                f"{records_per_core} requested"
            )
        return workload

    digest = None
    key = None
    if scale is not None:
        key = trace_key(
            workload.name, workload.seed, scale,
            workload.num_cores, records_per_core,
        )
        digest = key_digest(key)
        cache = cache if cache is not None else TraceCache()
        arenas = _MEMO.get(digest)
        if arenas is None:
            arenas = cache.load(digest, key)
            if arenas is not None:
                _MEMO[digest] = arenas
        if arenas is not None:
            _count("trace_compile_hits")
            logger.info(
                "compiled-trace cache hit: %s (%d cores × %d records)",
                workload.name, len(arenas), records_per_core,
            )
            return _wrap(workload, arenas)
        _count("trace_compile_misses")

    cores = [
        pack_records(workload.core_stream(core_id), records_per_core)
        for core_id in range(workload.num_cores)
    ]
    if digest is not None and key is not None:
        cache.store(digest, key, cores)
        # re-open through mmap so this process, too, shares the page
        # cache with workers instead of holding a private heap copy
        arenas = cache.load(digest, key)
        if arenas is not None:
            _MEMO[digest] = arenas
            cores = arenas
        logger.info(
            "compiled %s: %d cores × %d records -> %s",
            workload.name, len(cores), records_per_core,
            cache.path_for(digest),
        )
    return _wrap(workload, cores)


def _wrap(
    workload: Workload, cores: Sequence[PackedCoreTrace]
) -> CompiledWorkload:
    return CompiledWorkload(
        name=workload.name,
        cores=cores,
        seed=getattr(workload, "seed", 1234),
        description=getattr(workload, "description", ""),
        paper_mpki=getattr(workload, "paper_mpki", None),
    )


# ---------------------------------------------------------------------------
# Text/.gz trace file bridge (repro.cpu.tracefile <-> compiled arenas)
# ---------------------------------------------------------------------------


def compile_trace_files(
    name: str,
    paths: Dict[int, Union[str, Path]],
    records_per_core: Optional[int] = None,
) -> CompiledWorkload:
    """Compile captured text/``.gz`` trace files into packed arenas.

    The counterpart of :func:`repro.cpu.tracefile.workload_from_traces`
    for the fast path: records parse through the same
    ``parse_record`` grammar, then pack.  With ``records_per_core``
    unset, every core is truncated to the shortest file so the arena
    stays rectangular; set it explicitly to require a minimum length.
    """
    from repro.cpu.tracefile import read_trace

    if not paths:
        raise ValueError("need at least one core trace")
    per_core = {
        core_id: list(read_trace(path)) for core_id, path in paths.items()
    }
    for core_id, records in per_core.items():
        if not records:
            raise ValueError(f"trace file {paths[core_id]} contains no records")
    limit = (
        records_per_core
        if records_per_core is not None
        else min(len(records) for records in per_core.values())
    )
    cores = []
    for core_id in sorted(per_core):
        records = per_core[core_id]
        if len(records) < limit:
            raise ValueError(
                f"trace file {paths[core_id]} holds {len(records)} records; "
                f"{limit} per core requested"
            )
        cores.append(pack_finite(records[:limit]))
    return CompiledWorkload(
        name=name,
        cores=cores,
        description=f"compiled from {len(cores)} trace file(s)",
    )


def write_compiled_trace(
    workload: CompiledWorkload,
    directory: Union[str, Path],
    compress: bool = True,
) -> Dict[int, Path]:
    """Decode a compiled workload back into per-core text trace files.

    The inverse bridge: the emitted files parse back (via
    :func:`repro.cpu.tracefile.read_trace` /
    :func:`compile_trace_files`) into the identical record streams.
    Returns ``{core_id: path}``.
    """
    from repro.cpu.tracefile import write_trace

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".trace.gz" if compress else ".trace"
    paths: Dict[int, Path] = {}
    for core_id in range(workload.num_cores):
        path = directory / f"{workload.name}.core{core_id}{suffix}"
        write_trace(path, workload.packed(core_id).decode())
        paths[core_id] = path
    return paths
