"""Packed trace encoding: one workload stream as three flat arrays.

A compiled core trace is three parallel, index-aligned sections —
``pcs`` (u64), ``addresses`` (u64), and ``flags`` (u8) — instead of a
Python generator of :class:`~repro.cpu.trace.TraceRecord` objects.  The
encoding is total: every field of a ``TraceRecord`` maps to exactly one
slot, so decoding reproduces the source record stream bit-for-bit (the
round-trip property the test suite enforces for every registered
workload).

The flag byte packs the three booleans::

    bit 0  is_mem
    bit 1  is_write
    bit 2  depends_on_prev_load

A compute instruction is flag ``0``, so the replay loop's "is this a
memory access?" test is a single truthiness check on one byte.
"""

from __future__ import annotations

from array import array
from itertools import islice
from typing import Iterable, Iterator, Sequence, Tuple

from repro.cpu.trace import TraceRecord

#: encoding version; folded into every compiled-trace cache key so a
#: layout change can never decode a stale arena
PACK_FORMAT = 1

FLAG_MEM = 0x1
FLAG_WRITE = 0x2
FLAG_DEP = 0x4

_U64_MAX = (1 << 64) - 1


class PackedCoreTrace:
    """One core's compiled stream: three index-aligned flat sequences.

    ``pcs``/``addresses`` index as unsigned 64-bit ints, ``flags`` as
    small ints — either ``array``/``bytes`` (freshly compiled) or
    ``memoryview`` casts over a read-only ``mmap`` (loaded from the
    on-disk trace cache); the replay loops only ever index, so the two
    backings are interchangeable.
    """

    __slots__ = ("pcs", "addresses", "flags", "records")

    def __init__(self, pcs, addresses, flags, records: int) -> None:
        self.pcs = pcs
        self.addresses = addresses
        self.flags = flags
        self.records = records

    def decode(self) -> Iterator[TraceRecord]:
        """Replay the packed words as the original record stream."""
        pcs, addresses, flags = self.pcs, self.addresses, self.flags
        for index in range(self.records):
            bits = flags[index]
            yield TraceRecord(
                pc=pcs[index],
                address=addresses[index],
                is_mem=bool(bits & FLAG_MEM),
                is_write=bool(bits & FLAG_WRITE),
                depends_on_prev_load=bool(bits & FLAG_DEP),
            )


def pack_records(
    records: Iterable[TraceRecord], count: int
) -> PackedCoreTrace:
    """Drain ``count`` records from a stream into a packed arena.

    Raises ``ValueError`` if the stream ends early (compiled traces are
    exact-length by construction) or if a pc/address does not fit in an
    unsigned 64-bit word (the on-disk format's word size).
    """
    pcs = array("Q")
    addresses = array("Q")
    flags = bytearray()
    seen = 0
    for record in islice(records, count):
        pc = record.pc
        address = record.address
        if not (0 <= pc <= _U64_MAX and 0 <= address <= _U64_MAX):
            raise ValueError(
                f"record {seen}: pc={pc:#x} address={address:#x} does not "
                f"fit the packed 64-bit trace words"
            )
        bits = 0
        if record.is_mem:
            bits = FLAG_MEM
            if record.is_write:
                bits |= FLAG_WRITE
            if record.depends_on_prev_load:
                bits |= FLAG_DEP
        pcs.append(pc)
        addresses.append(address)
        flags.append(bits)
        seen += 1
    if seen < count:
        raise ValueError(
            f"stream ended after {seen} records; {count} requested"
        )
    return PackedCoreTrace(pcs, addresses, bytes(flags), count)


def pack_finite(records: Sequence[TraceRecord]) -> PackedCoreTrace:
    """Pack an already-materialised finite record list (trace files)."""
    return pack_records(iter(records), len(records))


def arena_bytes(cores: Sequence[PackedCoreTrace]) -> Tuple[bytes, ...]:
    """The raw sections of each core, for serialisation.

    Grouped per kind — ``(pcs..., addresses..., flags...)`` — so the
    8-byte word sections stay aligned when concatenated and the 1-byte
    flag sections all sit at the tail.  Words are native-endian (the
    cache header records the byte order; a mismatch reads as a miss).
    """

    def words(section) -> bytes:
        data = section if isinstance(section, array) else array("Q", section)
        return data.tobytes()

    return tuple(
        [words(core.pcs) for core in cores]
        + [words(core.addresses) for core in cores]
        + [bytes(core.flags) for core in cores]
    )
