"""The on-disk compiled-trace cache: compile once, ``mmap`` everywhere.

A parameter sweep runs the same workload under many prefetcher configs;
without this cache every one of those jobs would re-drain the workload's
Python generators record by record.  Compiled arenas are stored under
``$REPRO_CACHE_DIR/traces`` (the same root as the executor's result
cache), keyed by a SHA-256 digest of the full trace identity::

    (workload name, seed, scale, cores, records per core,
     generator version, pack format, byte order)

so the first job of a sweep compiles and every later job — in this
process or any worker — maps the file read-only and starts replaying
immediately.  ``STREAM_VERSION`` (``repro.workloads.registry``) is the
generator version: bumping it when any workload's output changes
invalidates every compiled trace at once.

File layout (all word sections 8-byte aligned)::

    magic  b"RPROTRC1"
    u32    length of the JSON header
    JSON   {"format", "byteorder", "cores", "records", "key": {...}}
    pad    to 8 bytes
    u64[]  pcs, one section per core
    u64[]  addresses, one section per core
    u8[]   flags, one section per core

Loads go through ``mmap`` with ``ACCESS_READ`` and zero-copy
``memoryview`` casts, so concurrent workers share one page-cache copy.
Writes are atomic (temp file + ``os.replace``); torn or mismatched
files read as misses and are recompiled.
"""

from __future__ import annotations

import json
import logging
import mmap
import os
import struct
import sys
import tempfile
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.sim.compile.packed import PACK_FORMAT, PackedCoreTrace, arena_bytes

logger = logging.getLogger("repro.sim.compile")

_MAGIC = b"RPROTRC1"
_HEADER_LEN = struct.Struct("<I")

#: process-wide compile counters; the executor folds the deltas of a
#: batch into its own StatGroup (``trace_compile_hits`` / ``_misses``)
_COUNTERS: Dict[str, int] = {
    "trace_compile_hits": 0,
    "trace_compile_misses": 0,
}


def compile_counters() -> Dict[str, int]:
    """A snapshot of the process-wide compile hit/miss counters."""
    return dict(_COUNTERS)


def _count(key: str) -> None:
    _COUNTERS[key] += 1


def trace_key(
    workload: str,
    seed: int,
    scale: float,
    num_cores: int,
    records_per_core: int,
) -> Dict[str, object]:
    """The canonical identity of a compiled trace (the cache key)."""
    from repro.workloads.registry import STREAM_VERSION

    return {
        "workload": workload,
        "seed": seed,
        "scale": scale,
        "cores": num_cores,
        "records": records_per_core,
        "stream_version": STREAM_VERSION,
        "format": PACK_FORMAT,
        "byteorder": sys.byteorder,
    }


def key_digest(key: Dict[str, object]) -> str:
    payload = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return sha256(payload.encode("utf-8")).hexdigest()


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


class TraceCache:
    """Digest-addressed store of compiled trace arenas.

    One file per trace under ``<root>/traces/<digest[:2]>/<digest>.trc``;
    the root defaults to the executor's cache root (``$REPRO_CACHE_DIR``
    or ``~/.cache/repro``).
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            from repro.sim.executor import default_cache_dir

            root = default_cache_dir()
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        return self.root / "traces" / digest[:2] / f"{digest}.trc"

    # -- store --------------------------------------------------------------
    def store(
        self, digest: str, key: Dict[str, object],
        cores: Sequence[PackedCoreTrace],
    ) -> Path:
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps(
            {
                "format": PACK_FORMAT,
                "byteorder": sys.byteorder,
                "cores": len(cores),
                "records": cores[0].records if cores else 0,
                "key": key,
            },
            sort_keys=True,
        ).encode("utf-8")
        prefix_len = len(_MAGIC) + _HEADER_LEN.size + len(header)
        padding = b"\0" * (_align8(prefix_len) - prefix_len)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".trc"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(_HEADER_LEN.pack(len(header)))
                handle.write(header)
                handle.write(padding)
                for section in arena_bytes(cores):
                    handle.write(section)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- load ---------------------------------------------------------------
    def load(
        self, digest: str, key: Dict[str, object]
    ) -> Optional[List[PackedCoreTrace]]:
        """Map a compiled trace read-only; ``None`` on any mismatch.

        The returned per-core sections are zero-copy ``memoryview``
        casts into the mapping; the mapping itself stays alive for as
        long as any view does (CPython keeps the exporting buffer
        pinned), so callers just hold the views.
        """
        path = self.path_for(digest)
        try:
            with open(path, "rb") as handle:
                mapping = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except (OSError, ValueError):
            return None
        view = memoryview(mapping)
        try:
            if bytes(view[: len(_MAGIC)]) != _MAGIC:
                return None
            (header_len,) = _HEADER_LEN.unpack_from(view, len(_MAGIC))
            start = len(_MAGIC) + _HEADER_LEN.size
            header = json.loads(bytes(view[start : start + header_len]))
            if (
                header.get("format") != PACK_FORMAT
                or header.get("byteorder") != sys.byteorder
                or header.get("key") != key
            ):
                return None
            num_cores = header["cores"]
            records = header["records"]
            data = _align8(start + header_len)
            words = records * 8
            expected = data + num_cores * (2 * words + records)
            if len(view) < expected:
                return None
            cores: List[PackedCoreTrace] = []
            flags_base = data + 2 * num_cores * words
            for core_id in range(num_cores):
                pcs = view[
                    data + core_id * words : data + (core_id + 1) * words
                ].cast("Q")
                addr_off = data + num_cores * words + core_id * words
                addresses = view[addr_off : addr_off + words].cast("Q")
                flags = view[
                    flags_base + core_id * records :
                    flags_base + (core_id + 1) * records
                ]
                cores.append(PackedCoreTrace(pcs, addresses, flags, records))
            return cores
        except (KeyError, ValueError, struct.error):
            return None
