"""Batch execution of simulation points: fan-out, memoisation, counters.

Every paper artifact is a matrix of independent ``(workload × prefetcher
× parameter)`` simulation points.  This module turns each point into a
self-describing, picklable :class:`SimJob` and runs whole batches through
an :class:`Executor` that

* fans jobs out across a ``ProcessPoolExecutor`` (``workers > 1``) with a
  serial in-process fallback (``workers == 1``, or no usable
  ``multiprocessing`` start method) — results are **bit-identical** either
  way, because all randomness is derived from the job spec itself;
* memoises completed jobs in an on-disk :class:`ResultCache` keyed by a
  stable SHA-256 digest of the job spec plus the code version, so repeat
  figure regenerations short-circuit to a JSON read;
* surfaces hit/miss/run counters and wall-clock timings through a
  :class:`repro.common.stats.StatGroup`.

The cache directory defaults to ``~/.cache/repro`` and is overridden by
the ``REPRO_CACHE_DIR`` environment variable.  Entries invalidate
automatically when the package version (``repro.__version__``) or the
cache schema bumps — both are folded into the digest.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import tempfile
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import asdict, dataclass, field, replace
from enum import Enum
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.obs.config import ObservabilityConfig
from repro.sim.engine import (
    FASTPATH_VERSION,
    VECTOR_VERSION,
    SimulationEngine,
    SimulationParams,
)
from repro.sim.results import SimResult

#: bump when the cache entry layout (not the simulated semantics) changes
#: schema 2: job specs carry the observability config (timeline samples
#: live in the result, so two runs differing only in ``timeline_interval``
#: must not share a cache entry)
#: schema 3: jobs carry the trace-compile flag and digests fold in the
#: engine fast-path version, so results cached before the compiled trace
#: pipeline existed can never be served for compiled-path runs
#: schema 4: jobs carry the vectorized flag and digests fold in the
#: vector-tier version, so entries produced by an older batch-replay
#: kernel are never served once the kernel changes
#: schema 5: jobs carry the LLC replacement-policy name, so a zoo run
#: ("fifo", "arc", "opt", ...) can never collide with the LRU entry of
#: the same point — and every pre-zoo entry invalidates at once
#: schema 6: the vector tier's batched miss path (VECTOR_VERSION 2)
#: rebuilt the barrier execution sequence; entries produced by the
#: per-barrier ``hierarchy.access`` replay are invalidated wholesale
#: rather than trusting the version fold alone
CACHE_SCHEMA = 6

KwargItems = Tuple[Tuple[str, object], ...]


@dataclass
class JobFailure:
    """Typed per-job failure result.

    Takes a :class:`SimResult`'s slot in a batch when the job could not
    produce one.  ``kind`` is one of

    * ``"worker-crash"`` — the worker process died mid-job (OOM kill,
      segfault, ``os.kill``); the pool was respawned and the rest of the
      batch completed.  Retryable: the crash may be environmental.
    * ``"timeout"`` — the job exceeded its wall-clock budget and its
      worker was killed (:meth:`Executor.run_job_guarded` only).
    * ``"error"`` — the job raised an ordinary exception; deterministic,
      so retrying the identical spec cannot help.
    """

    workload: str
    prefetcher: str
    kind: str
    message: str
    digest: str = ""

    RETRYABLE_KINDS = ("worker-crash", "timeout")

    @classmethod
    def from_exception(cls, job: "SimJob", exc: BaseException) -> "JobFailure":
        return cls(
            workload=job.workload,
            prefetcher=job.prefetcher,
            kind="error",
            message=f"{type(exc).__name__}: {exc}",
            digest=job.digest(),
        )

    @classmethod
    def crash(cls, job: "SimJob", message: str) -> "JobFailure":
        return cls(
            workload=job.workload,
            prefetcher=job.prefetcher,
            kind="worker-crash",
            message=message,
            digest=job.digest(),
        )

    @classmethod
    def timeout(cls, job: "SimJob", seconds: float) -> "JobFailure":
        return cls(
            workload=job.workload,
            prefetcher=job.prefetcher,
            kind="timeout",
            message=f"exceeded wall-clock budget of {seconds:g}s; worker killed",
            digest=job.digest(),
        )

    @property
    def retryable(self) -> bool:
        return self.kind in self.RETRYABLE_KINDS

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


class BatchFailure(RuntimeError):
    """Raised by :meth:`Executor.run_jobs` (``return_failures=False``)
    when jobs crashed their workers.  Unlike the raw
    ``BrokenProcessPool`` it replaces, it is raised *after* the rest of
    the batch completed (and was cached), and it names the jobs lost."""

    def __init__(self, failures: Sequence[JobFailure]) -> None:
        self.failures = list(failures)
        names = ", ".join(
            f"{f.workload}/{f.prefetcher} ({f.kind})" for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)} job(s) failed: {names}"
        )


def _canonical(value: object) -> object:
    """Reduce a job-spec value to deterministic, JSON-encodable primitives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {
            str(key): _canonical(val) for key, val in sorted(value.items())
        }
    return repr(value)


@dataclass(frozen=True)
class SimJob:
    """One self-describing simulation point.

    Carries everything :func:`execute_job` needs to rebuild the run from
    scratch in any process: the workload *by name* (plus seed and scale —
    workload streams derive all randomness from these, so no RNG state
    crosses process boundaries), the prefetcher configuration, the system,
    and the run length.
    """

    workload: str
    prefetcher: str = "none"
    prefetcher_kwargs: KwargItems = ()
    system: SystemConfig = field(default_factory=SystemConfig)
    params: SimulationParams = field(default_factory=SimulationParams)
    seed: int = 1234
    scale: float = 1.0
    train_at: str = "llc"
    obs: ObservabilityConfig = field(default_factory=ObservabilityConfig)
    #: replay a packed compiled trace (shared across the sweep via the
    #: on-disk trace cache) instead of re-draining the generators; the
    #: two paths produce identical results, but the flag is still part
    #: of the job identity because it selects the execution machinery
    compile: bool = True
    #: permit the NumPy batch-replay tier when the run qualifies; like
    #: ``compile``, results are identical either way but the flag is
    #: part of the job identity because it selects execution machinery
    vectorized: bool = True
    #: LLC replacement policy (a ``repro.memsys.replacement`` registry
    #: name); "lru" is the paper's configuration and the native fast path
    replacement: str = "lru"

    @classmethod
    def build(
        cls,
        workload: str,
        prefetcher: str = "none",
        system: Optional[SystemConfig] = None,
        instructions_per_core: int = 100_000,
        warmup_instructions: int = 20_000,
        seed: int = 1234,
        scale: float = 1.0,
        prefetcher_kwargs: Optional[dict] = None,
        train_at: str = "llc",
        obs: Optional[ObservabilityConfig] = None,
        compile: bool = True,
        vectorized: bool = True,
        replacement: str = "lru",
    ) -> "SimJob":
        """Mirror of :func:`repro.sim.runner.run_simulation`'s signature."""
        return cls(
            workload=workload,
            prefetcher=prefetcher,
            prefetcher_kwargs=tuple(sorted((prefetcher_kwargs or {}).items())),
            system=system if system is not None else SystemConfig(),
            params=SimulationParams(
                instructions_per_core=instructions_per_core,
                warmup_instructions=warmup_instructions,
            ),
            seed=seed,
            scale=scale,
            train_at=train_at,
            obs=obs if obs is not None else ObservabilityConfig(),
            compile=compile,
            vectorized=vectorized,
            replacement=replacement,
        )

    def with_instructions(
        self,
        instructions_per_core: int,
        warmup_instructions: Optional[int] = None,
    ) -> "SimJob":
        """This job at a different instruction budget (same everything else).

        The orchestrated screening path derives cheap short-trace
        variants of a full-length job spec this way; because only
        ``params`` changes, the derived job digests differently from the
        original while the full-length job stays byte-identical to one
        built directly.  ``warmup_instructions`` defaults to scaling the
        current warmup proportionally (and is clamped below the new
        budget, which :class:`SimulationParams` requires).
        """
        if warmup_instructions is None:
            warmup_instructions = (
                self.params.warmup_instructions
                * instructions_per_core
                // self.params.instructions_per_core
            )
        warmup_instructions = max(
            0, min(warmup_instructions, instructions_per_core - 1)
        )
        return replace(
            self,
            params=SimulationParams(
                instructions_per_core=instructions_per_core,
                warmup_instructions=warmup_instructions,
            ),
        )

    def spec(self) -> Dict[str, object]:
        """The canonical, JSON-encodable description of this job."""
        return {
            "workload": self.workload,
            "prefetcher": self.prefetcher,
            "prefetcher_kwargs": _canonical(dict(self.prefetcher_kwargs)),
            "system": _canonical(asdict(self.system)),
            "params": _canonical(asdict(self.params)),
            "seed": self.seed,
            "scale": self.scale,
            "train_at": self.train_at,
            # The observability config shapes the *result* (timeline
            # samples) and the run's side effects (trace files), so it
            # is part of the identity of a cached entry.
            "obs": _canonical(asdict(self.obs)),
            "compile": self.compile,
            "vectorized": self.vectorized,
            "replacement": self.replacement,
        }

    @property
    def cacheable(self) -> bool:
        """False when the run has side effects a cached result can't replay.

        A ``--trace`` job must execute for real every time: serving it
        from the cache would return counters without (re)writing the
        trace file the caller asked for.
        """
        return not self.obs.has_side_effects

    def digest(self) -> str:
        """Stable cache key: job spec + code version + cache schema.

        The engine fast-path and vector-tier versions ride along so a
        change to either specialised loop invalidates every entry it
        could have produced.
        """
        from repro import __version__

        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "version": __version__,
                "fastpath": FASTPATH_VERSION,
                "vector": VECTOR_VERSION,
                "job": self.spec(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _job_workload(job: SimJob):
    """The job's workload, compiled to a packed trace when requested.

    Compilation keys the on-disk trace cache with the job's full trace
    identity (name, seed, scale, cores, budget), so the N prefetcher
    configs of a sweep that share one workload compile it exactly once;
    later jobs — in this process or any worker — ``mmap`` the arena.
    """
    from repro.workloads.registry import make_workload

    workload = make_workload(job.workload, seed=job.seed, scale=job.scale)
    if job.compile:
        from repro.sim.compile import compile_workload

        workload = compile_workload(
            workload,
            records_per_core=job.params.instructions_per_core,
            scale=job.scale,
        )
    return workload


def execute_job(job: SimJob) -> SimResult:
    """Run one job in the current process.

    Module-level (not a method) so worker processes can unpickle it under
    both the ``fork`` and ``spawn`` start methods.  The workload is
    rebuilt from ``(name, seed, scale)``, and all stream RNGs are seeded
    from those values, so the result is a pure function of the job spec.
    """
    engine = SimulationEngine(
        workload=_job_workload(job),
        prefetcher=job.prefetcher,
        system=job.system,
        params=job.params,
        prefetcher_kwargs=dict(job.prefetcher_kwargs) or None,
        train_at=job.train_at,
        obs=job.obs,
        vectorized=job.vectorized,
        replacement=job.replacement,
    )
    return engine.run()


def execute_job_checked(job: SimJob) -> SimResult:
    """Run one job with a strict invariant checker riding the event stream.

    Module-level for the same pickling reasons as :func:`execute_job`.
    The run's trace sink becomes a tee of the caller-requested sink (if
    any) and a :class:`~repro.check.invariants.InvariantChecker` in
    strict mode, so any conservation-law violation aborts the batch with
    an :class:`~repro.check.invariants.InvariantViolation` instead of
    silently producing wrong numbers.
    """
    from repro.check.invariants import InvariantChecker
    from repro.obs.sinks import TeeSink, build_sink

    checker = InvariantChecker(strict=True)
    obs_sink = build_sink(job.obs)
    sink = checker if obs_sink is None else TeeSink([checker, obs_sink])
    engine = SimulationEngine(
        workload=_job_workload(job),
        prefetcher=job.prefetcher,
        system=job.system,
        params=job.params,
        prefetcher_kwargs=dict(job.prefetcher_kwargs) or None,
        train_at=job.train_at,
        obs=job.obs,
        sink=sink,
        vectorized=job.vectorized,
        replacement=job.replacement,
    )
    checker.attach(engine.hierarchy)
    try:
        result = engine.run()
    finally:
        if obs_sink is not None:
            obs_sink.close()
    checker.finalize()
    return result


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Digest-addressed JSON store of completed :class:`SimJob` results.

    One file per job under ``<root>/results/<digest[:2]>/<digest>.json``.
    Writes are atomic (temp file + ``os.replace``), so concurrent
    executors never observe a torn entry.  Corrupt or schema-mismatched
    entries read as misses and are overwritten on the next store.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, job: SimJob) -> Path:
        digest = job.digest()
        return self.root / "results" / digest[:2] / f"{digest}.json"

    def load(self, job: SimJob) -> Optional[SimResult]:
        path = self.path_for(job)
        try:
            handle = open(path, "r", encoding="utf-8")
        except OSError:
            return None  # plain miss: no entry
        # From here on the entry *exists*; anything unreadable about it is
        # corruption (torn write, truncation, foreign bytes) and mirrors
        # the trace cache's torn-file=miss policy: delete it so the next
        # store starts clean, and report a miss instead of raising.
        try:
            with handle:
                entry = json.load(handle)
            if entry.get("schema") != CACHE_SCHEMA or "result" not in entry:
                raise ValueError("schema mismatch or missing result")
            return SimResult.from_dict(entry["result"])
        except (OSError, ValueError, TypeError, KeyError, EOFError):
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def store(self, job: SimJob, result: SimResult) -> Path:
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        from repro import __version__

        entry = {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "job": job.spec(),
            "result": result.to_dict(),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly stop a pool's worker processes (timeout/interrupt path).

    ``shutdown(cancel_futures=True)`` alone would *wait* for the running
    job — exactly what a wall-clock kill or a Ctrl-C cleanup must not do.
    Reaches into the pool's process table (no public API exists) and
    SIGTERMs each worker; the subsequent ``shutdown(wait=True)`` then
    reaps them immediately, so no orphans outlive the call.

    The snapshot must happen *before* ``shutdown()``: even with
    ``wait=False`` the executor drops its ``_processes`` reference as
    part of shutdown, so reading it afterwards finds nothing to kill.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - cancel_futures is 3.9+
        pool.shutdown(wait=False)
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
    for process in processes:
        process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - SIGTERM blocked
            try:
                process.kill()
            except (OSError, ValueError, AttributeError):
                pass


def _pool_context() -> Optional[multiprocessing.context.BaseContext]:
    """Prefer ``fork`` (cheap, shares loaded modules), fall back to
    ``spawn``; ``None`` means the platform supports neither and the
    executor must run serially."""
    for method in ("fork", "spawn"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:  # pragma: no cover - platform dependent
            continue
    return None  # pragma: no cover - platform dependent


class Executor:
    """Runs batches of :class:`SimJob`\\ s with caching and parallelism.

    ``workers=1`` executes in-process (no pool, no pickling); ``workers>1``
    fans out over a process pool.  Either way, identical jobs within one
    batch are executed once, and an attached :class:`ResultCache` is
    consulted first and populated afterwards.

    ``stats`` counters: ``jobs``, ``cache_hits``, ``cache_misses``,
    ``cache_skipped`` (uncacheable side-effecting jobs), ``executed``,
    ``run_seconds`` (wall-clock of the execution phase), ``failures`` /
    ``worker_crashes`` / ``timeouts`` (jobs that produced a
    :class:`JobFailure` instead of a result), and — for
    in-process execution — ``trace_compile_hits``/``trace_compile_misses``
    from the compiled-trace cache (worker processes report theirs via
    the ``repro.sim.compile`` log instead; counters do not cross the
    process boundary).

    ``check=True`` runs every job through :func:`execute_job_checked`
    (strict runtime invariant checking) and bypasses the result cache in
    both directions — a cached result would skip the very checks the
    caller asked for, and a checked run proves nothing about future
    uncached replays.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        stats: Optional[StatGroup] = None,
        check: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        self.check = check
        self.stats = stats if stats is not None else StatGroup("executor")

    def run_job(self, job: SimJob) -> SimResult:
        return self.run_jobs([job])[0]

    def run_jobs(
        self, jobs: Sequence[SimJob], return_failures: bool = False
    ) -> List[Union[SimResult, JobFailure]]:
        """Execute a batch; results are returned in input order.

        A worker process dying mid-job (OOM kill, segfault) does **not**
        lose the batch: the affected job is isolated and reported as a
        :class:`JobFailure`, the pool is respawned, and every other job
        still completes (and is cached).  With ``return_failures=False``
        (the default) such failures — and only such failures — are then
        raised as one :class:`BatchFailure`; ordinary exceptions from a
        job propagate unchanged.  With ``return_failures=True`` both
        crashes and ordinary exceptions come back in-slot as typed
        :class:`JobFailure` values (the service supervisor's retry path).
        """
        jobs = list(jobs)
        self.stats.add("jobs", len(jobs))
        results: List[Optional[Union[SimResult, JobFailure]]] = [None] * len(jobs)

        # Cache probe + intra-batch dedup: map each distinct digest to the
        # slots awaiting its result.
        pending: "Dict[str, List[int]]" = {}
        pending_jobs: List[SimJob] = []
        for index, job in enumerate(jobs):
            digest = job.digest()
            if digest in pending:
                pending[digest].append(index)
                continue
            if self.cache is not None:
                if self.check or not job.cacheable:
                    # Side-effecting jobs (event tracing) must run for
                    # real: a cached result cannot rewrite the trace.
                    # Checked jobs likewise: the invariant checker only
                    # sees events from an actual execution.
                    self.stats.add("cache_skipped")
                else:
                    hit = self.cache.load(job)
                    if hit is not None:
                        self.stats.add("cache_hits")
                        results[index] = hit
                        continue
                    self.stats.add("cache_misses")
            pending[digest] = [index]
            pending_jobs.append(job)

        if pending_jobs:
            from repro.sim.compile import compile_counters

            compiles_before = compile_counters()
            start = time.perf_counter()
            executed = self._execute(pending_jobs, collect=return_failures)
            self.stats.add("run_seconds", time.perf_counter() - start)
            self.stats.add("executed", len(pending_jobs))
            for counter, value in compile_counters().items():
                delta = value - compiles_before[counter]
                if delta:
                    self.stats.add(counter, delta)
            for job, result in zip(pending_jobs, executed):
                if isinstance(result, JobFailure):
                    self.stats.add("failures")
                elif self.cache is not None and job.cacheable and not self.check:
                    self.cache.store(job, result)
                for index in pending[job.digest()]:
                    results[index] = result
        if not return_failures:
            failures = [r for r in results if isinstance(r, JobFailure)]
            if failures:
                raise BatchFailure(failures)
        return results  # type: ignore[return-value]

    #: sentinel distinguishing "no cache override" from "override with None"
    _CACHE_DEFAULT = object()

    def run_job_guarded(
        self,
        job: SimJob,
        timeout: Optional[float] = None,
        cache=_CACHE_DEFAULT,
    ) -> Union[SimResult, JobFailure]:
        """Run one job under the full robustness envelope; never raises.

        The job executes in a disposable single-process pool, so a crash
        is unambiguously attributable and ``timeout`` (wall-clock
        seconds) is enforceable: an overdue worker is killed, not just
        abandoned, and the outcome is a typed :class:`JobFailure` of kind
        ``"timeout"``.  The result cache is consulted and populated
        exactly as in :meth:`run_jobs`.  This is the hook
        :mod:`repro.serve` dispatches through — one call per queue slot,
        each slot owning its own :class:`Executor` so counters need no
        locks.  When the platform has no multiprocessing start method the
        job runs in-process: crashes then take the whole process (nothing
        to isolate) and the timeout cannot be enforced.

        ``cache`` overrides the executor's own cache for this one call —
        anything with ``ResultCache``'s ``load``/``store`` shape works
        (``None`` disables caching for the call).  Cluster worker agents
        pass a lease-scoped :class:`~repro.serve.cluster.shard.TieredCache`
        here so a single executor can serve leases whose cache topology
        depends on the frontend that granted them.
        """
        if cache is Executor._CACHE_DEFAULT:
            cache = self.cache
        self.stats.add("jobs")
        if cache is not None and not self.check and job.cacheable:
            hit = cache.load(job)
            if hit is not None:
                self.stats.add("cache_hits")
                return hit
            self.stats.add("cache_misses")
        elif cache is not None:
            self.stats.add("cache_skipped")

        runner = execute_job_checked if self.check else execute_job
        context = _pool_context()
        start = time.perf_counter()
        try:
            if context is None:  # pragma: no cover - platform dependent
                try:
                    result: Union[SimResult, JobFailure] = runner(job)
                except Exception as exc:
                    result = JobFailure.from_exception(job, exc)
            else:
                result = self._run_guarded_in_pool(runner, job, timeout, context)
        finally:
            self.stats.add("run_seconds", time.perf_counter() - start)
        self.stats.add("executed")
        if isinstance(result, JobFailure):
            self.stats.add("failures")
            if result.kind == "worker-crash":
                self.stats.add("worker_crashes")
            elif result.kind == "timeout":
                self.stats.add("timeouts")
        elif cache is not None and job.cacheable and not self.check:
            cache.store(job, result)
        return result

    def _run_guarded_in_pool(
        self, runner, job: SimJob, timeout: Optional[float], context
    ) -> Union[SimResult, JobFailure]:
        pool = ProcessPoolExecutor(max_workers=1, mp_context=context)
        try:
            future = pool.submit(runner, job)
            try:
                return future.result(timeout)
            except FutureTimeoutError:
                _terminate_pool(pool)
                return JobFailure.timeout(job, timeout or 0.0)
            except BrokenExecutor as exc:
                return JobFailure.crash(
                    job, f"worker process died mid-job ({exc or 'no detail'})"
                )
            except Exception as exc:
                return JobFailure.from_exception(job, exc)
        except BaseException:
            # KeyboardInterrupt/SystemExit: leave no orphaned workers or
            # half-written cache entries behind (stores are atomic, and
            # nothing reaches the cache from here).
            _terminate_pool(pool)
            raise
        finally:
            pool.shutdown(wait=True)

    def _execute(
        self, jobs: List[SimJob], collect: bool = False
    ) -> List[Union[SimResult, JobFailure]]:
        runner = execute_job_checked if self.check else execute_job
        context = _pool_context() if self.workers > 1 else None
        if context is None or len(jobs) == 1:
            results: List[Union[SimResult, JobFailure]] = []
            for job in jobs:
                try:
                    results.append(runner(job))
                except Exception as exc:
                    if not collect:
                        raise
                    results.append(JobFailure.from_exception(job, exc))
            return results
        return self._execute_pooled(runner, jobs, context, collect)

    def _execute_pooled(
        self, runner, jobs: List[SimJob], context, collect: bool
    ) -> List[Union[SimResult, JobFailure]]:
        """Pool fan-out with worker-crash isolation.

        Round 1 runs the whole batch across ``self.workers`` processes.
        If the pool breaks (a worker died), every *unfinished* job is a
        suspect — the pool API cannot say which one was on the dying
        worker — so suspects are replayed one per fresh single-process
        pool: a replay that breaks *its* pool convicts exactly that job
        (``JobFailure.crash``), and innocent bystanders complete.
        Crashes are rare, so the serialised replay tail is a price paid
        only on the broken path.
        """
        slots: List[Optional[Union[SimResult, JobFailure]]] = [None] * len(jobs)
        suspects: List[int] = []
        workers = min(self.workers, len(jobs))
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        try:
            futures = [(i, pool.submit(runner, job)) for i, job in enumerate(jobs)]
            for i, future in futures:
                try:
                    slots[i] = future.result()
                except BrokenExecutor:
                    suspects.append(i)
                except Exception as exc:
                    if not collect:
                        raise
                    slots[i] = JobFailure.from_exception(jobs[i], exc)
        except BaseException:
            _terminate_pool(pool)
            raise
        finally:
            pool.shutdown(wait=True)

        for i in suspects:
            job = jobs[i]
            replay_pool = ProcessPoolExecutor(max_workers=1, mp_context=context)
            try:
                future = replay_pool.submit(runner, job)
                try:
                    slots[i] = future.result()
                except BrokenExecutor:
                    self.stats.add("worker_crashes")
                    slots[i] = JobFailure.crash(
                        job, "worker process died mid-job; batch respawned"
                    )
                except Exception as exc:
                    if not collect:
                        raise
                    slots[i] = JobFailure.from_exception(job, exc)
            except BaseException:
                _terminate_pool(replay_pool)
                raise
            finally:
                replay_pool.shutdown(wait=True)
        return slots  # type: ignore[return-value]
