"""High-level run API: what examples, experiments, and benches call."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.common.config import SystemConfig
from repro.sim.engine import SimulationEngine, SimulationParams
from repro.sim.results import SimResult
from repro.workloads.base import Workload
from repro.workloads.registry import make_workload


def _resolve_workload(
    workload: Union[str, Workload], seed: int, scale: float
) -> Workload:
    if isinstance(workload, str):
        return make_workload(workload, seed=seed, scale=scale)
    return workload  # a Workload or CompiledWorkload instance, as-is


def run_simulation(
    workload: Union[str, Workload],
    prefetcher: str = "none",
    system: Optional[SystemConfig] = None,
    instructions_per_core: int = 100_000,
    warmup_instructions: int = 20_000,
    seed: int = 1234,
    scale: float = 1.0,
    prefetcher_kwargs: Optional[dict] = None,
    prefetchers=None,
    train_at: str = "llc",
    obs=None,
    sink=None,
    compile: bool = False,
    vectorized: bool = True,
    replacement: str = "lru",
) -> SimResult:
    """Run one workload under one prefetcher; returns the measured window.

    ``workload`` may be a Table II name (``"em3d"``), a custom
    :class:`repro.workloads.base.Workload`, or an already-compiled
    :class:`repro.sim.compile.CompiledWorkload`.  ``prefetcher_kwargs``
    are forwarded to the prefetcher factory (e.g. ``{"degree": 32}`` for
    the Fig. 10 aggressive variants); ``prefetchers`` may instead supply
    ready-built per-core instances (used by the motivation experiments
    that need to interrogate the prefetcher afterwards).

    ``obs`` (an :class:`repro.obs.ObservabilityConfig`) turns on event
    tracing and/or timeline sampling; ``sink`` supplies a ready-made
    :class:`repro.obs.TraceSink` instead of a trace file.

    ``compile=True`` packs the workload's streams into a compiled trace
    first (cached on disk for named workloads, where the trace identity
    is fully known), enabling the engine's allocation-free replay loop;
    results are identical either way.  ``vectorized`` (default on)
    additionally permits the NumPy batch-replay tier when the run
    qualifies — again with identical results.

    ``replacement`` selects the LLC replacement policy by registry name
    (:mod:`repro.memsys.replacement`); ``"opt"`` — the Belady oracle —
    needs the packed trace to pre-scan, so pass ``compile=True`` with it.
    """
    resolved = _resolve_workload(workload, seed, scale)
    if compile:
        from repro.sim.compile import compile_workload

        resolved = compile_workload(
            resolved,
            records_per_core=instructions_per_core,
            scale=scale if isinstance(workload, str) else None,
        )
    engine = SimulationEngine(
        workload=resolved,
        prefetcher=prefetcher,
        system=system,
        params=SimulationParams(
            instructions_per_core=instructions_per_core,
            warmup_instructions=warmup_instructions,
        ),
        prefetcher_kwargs=prefetcher_kwargs,
        prefetchers=prefetchers,
        train_at=train_at,
        obs=obs,
        sink=sink,
        vectorized=vectorized,
        replacement=replacement,
    )
    return engine.run()


def compare_prefetchers(
    workload: Union[str, Workload],
    prefetchers: Sequence[str],
    system: Optional[SystemConfig] = None,
    instructions_per_core: int = 100_000,
    warmup_instructions: int = 20_000,
    seed: int = 1234,
    scale: float = 1.0,
    prefetcher_kwargs: Optional[Dict[str, dict]] = None,
    include_baseline: bool = True,
    workers: int = 1,
    cache=None,
    executor=None,
    compile: bool = True,
    vectorized: bool = True,
    replacement: str = "lru",
) -> Dict[str, SimResult]:
    """Run a workload under several prefetchers (plus the baseline).

    Returns ``{prefetcher_name: SimResult}``; the no-prefetcher baseline
    is included under ``"none"`` unless disabled.  ``prefetcher_kwargs``
    maps prefetcher name to its keyword overrides.

    The per-prefetcher runs are independent, so named workloads route
    through a :class:`repro.sim.executor.Executor` — pass ``workers``
    (and optionally a ``repro.sim.executor.ResultCache`` as ``cache``) or
    a pre-built ``executor`` to fan out / memoise.  A ``Workload``
    *instance* pins the comparison to the in-process serial path.

    ``compile`` (default on) replays each run from a packed compiled
    trace — built once and shared by every prefetcher in the comparison
    — instead of re-draining the workload generators per run; results
    are identical either way.
    """
    names = list(prefetchers)
    if include_baseline and "none" not in names:
        names.insert(0, "none")
    kwargs_by_name = prefetcher_kwargs or {}
    results: Dict[str, SimResult] = {}

    if not isinstance(workload, str):
        if compile:
            from repro.sim.compile import compile_workload

            workload = compile_workload(
                workload, records_per_core=instructions_per_core
            )
        for name in names:
            results[name] = run_simulation(
                workload,
                prefetcher=name,
                system=system,
                instructions_per_core=instructions_per_core,
                warmup_instructions=warmup_instructions,
                seed=seed,
                prefetcher_kwargs=kwargs_by_name.get(name),
                vectorized=vectorized,
                replacement=replacement,
            )
        return results

    from repro.sim.executor import Executor, SimJob

    jobs = [
        SimJob.build(
            workload,
            prefetcher=name,
            system=system,
            instructions_per_core=instructions_per_core,
            warmup_instructions=warmup_instructions,
            seed=seed,
            scale=scale,
            prefetcher_kwargs=kwargs_by_name.get(name),
            compile=compile,
            vectorized=vectorized,
            replacement=replacement,
        )
        for name in names
    ]
    if executor is None:
        executor = Executor(workers=workers, cache=cache)
    return dict(zip(names, executor.run_jobs(jobs)))
