"""Batched shared miss path: array-mirrored LLC/MSHR/DRAM barrier service.

PR 6's vector tier batches everything *between* L1 misses but drains the
misses themselves one scalar ``hierarchy.access`` call at a time — on the
Table II matrix that shared scalar path is the Amdahl term that forced 63
of 70 bench points to demote.  This module vectorizes the miss path
itself, in three cooperating pieces:

* **An LLC array mirror** (native-LRU only, same restriction as the
  array L1s): tag/valid arrays refreshed lazily per set from
  :meth:`Cache.export_set`, with a batched set-indexed tag-membership
  pass that splits a chunk's barrier batch into LLC-hits vs LLC-misses
  in one NumPy call.  Verdicts are guarded by per-set generation
  counters: any fill to a set bumps its generation, and a member whose
  set changed since classification is a *hazard* — it falls back to the
  live ``OrderedDict`` probe (the scalar drain), so outcomes are exact
  whatever interleaving the barrier heap produces.

* **A batched MSHR gate**: vectorized in-flight block matching
  (``np.isin`` against :meth:`MshrFile.inflight_blocks`) plus an
  intra-chunk uniqueness test.  A member whose block was not in flight
  at classification time and is unique among the chunk's known-block
  barriers provably cannot merge — per-core MSHRs only gain blocks
  through this core's own barriers, and first-touch barriers allocate
  fresh frames whose blocks collide with nothing — so the scalar merge
  probe is skipped for it.  Members that *might* merge keep the exact
  scalar probe; occupancy-mutating reservations always run scalar.

* **Vectorized DRAM routing for the LLC-miss residue**: channel / bank /
  row per member via a bit-exact NumPy SplitMix64 (:func:`mix64_np`) —
  the pure, order-independent part of ``DramModel.access``.  The
  *stateful* part (channel busy clocks, open rows) is shared across
  cores and mutated in live barrier order, so it is read live at
  execution; precomputing row verdicts against a speculative bank
  schedule cannot be made sound under cross-core interleaving (a
  generation match does not prove *which* accesses intervened), and a
  wrong open-row guess silently corrupts timing.  Routing is where the
  per-miss Python cost actually was.

Execution runs in one of three modes, chosen once per run:

* ``mirror`` — no prefetchers, native LRU, no replacement oracle: the
  full battery above, since demand fills (all issued here) are the only
  LLC mutations and the mirror sees every one.
* ``lean`` — prefetchers training at the LLC over native LRU: the MSHR
  gate and DRAM routes apply, but prefetch fills mutate the LLC outside
  any batch window, so membership verdicts are skipped and the LLC is
  probed live.  The whole miss sequence (MSHR → LLC → DRAM → train) is
  inlined over hoisted counter cells — no ``AccessResult`` allocation,
  no method dispatch, no repeated lazy-expiry passes.
* ``fallback`` — a replacement-policy interface or Belady oracle is
  active: the MSHR head is inlined and the LLC/DRAM section goes
  through the real ``MemoryHierarchy._llc_access`` (policies observe
  every touch, so there is nothing sound to batch).

Every float here is produced by the same operations in the same order
as ``MemoryHierarchy.access`` — byte-identical ``SimResult``\\ s across
all three engine tiers remain the hard invariant, enforced by
``bingo-sim check --vectorized`` and the hypothesis property suite.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from repro.common.hashing import mix64
from repro.memsys.cache import BlockState
from repro.prefetchers.base import AccessInfo
from repro.sim.vector.classify import CLS_MISS

#: execution modes (see module docstring)
MODE_MIRROR = "mirror"
MODE_LEAN = "lean"
MODE_FALLBACK = "fallback"

#: hazard safety valve: fraction of planned batch members whose mirror
#: verdict was invalidated by a same-set ordering hazard above which the
#: run demotes to the compiled loop (reason "hazard").  Hazard members
#: re-resolve against the live structures and stay exact, so this is a
#: performance valve, not a correctness one; the default (> 1) never
#: fires naturally and tests monkeypatch it down.
HAZARD_DEMOTE_RATE = 2.0
#: minimum planned members before the hazard valve is consulted
HAZARD_MIN_PLANNED = 64

_U64 = np.uint64


def mix64_np(v):
    """SplitMix64 finalizer over a uint64 array.

    Bit-exact with :func:`repro.common.hashing.mix64`: NumPy uint64
    multiplication wraps mod 2**64, which is exactly the scalar
    version's ``& ((1 << 64) - 1)``.
    """
    v = np.asarray(v, dtype=np.uint64)
    with np.errstate(over="ignore"):
        v = (v ^ (v >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        v = (v ^ (v >> _U64(27))) * _U64(0x94D049BB133111EB)
        return v ^ (v >> _U64(31))


class MissPlan:
    """Per-chunk precomputed barrier batch: the output of one batched
    classification pass, consumed in record order by the executor.

    Parallel Python lists (converted once from the NumPy pass) indexed
    by *plan ordinal*; ``pos`` holds chunk-relative record positions in
    strictly increasing order.  ``hit``/``gen`` are None outside mirror
    mode.  A planned member whose record is reclassified to an L1 hit is
    simply skipped by the cursor; a record reclassified *into* a miss
    has no plan entry and runs fully scalar.
    """

    __slots__ = ("pos", "nomerge", "ch", "bank", "row", "hit", "gen", "cur", "n")


class MissPath:
    """Services the vector tier's barriers against the shared level."""

    def __init__(self, replay) -> None:
        h = replay.h
        self.h = h
        cfg = h.config
        self.block_bits = h.address_map.block_bits
        self.block_mask = h.address_map.block_size - 1
        self.l1_hit = cfg.l1d.hit_latency
        self.llc = h.llc
        self.llc_sets = h.llc._sets
        self.llc_set_mask = h.llc._set_mask
        self.llc_hit = cfg.llc.hit_latency
        self.mshrs = h.l1_mshrs
        self.prefetchers = h.prefetchers
        self._issue_prefetches = h._issue_prefetches

        # hoisted stat cells: the shared LLC set (already cells on the
        # hierarchy) plus per-core MSHR cells the inline head needs
        self.c_demand_accesses = h._c_demand_accesses
        self.c_demand_writes = h._c_demand_writes
        self.c_demand_hits = h._c_demand_hits
        self.c_demand_misses = h._c_demand_misses
        self.c_covered = h._c_covered
        self.c_prefetch_hits = h._c_prefetch_hits
        self.c_late_covered = h._c_late_covered
        # MSHR stats go through StatGroup.add like the originals: the
        # counters must stay lazily created, or raw_stats would grow
        # zero-valued keys the scalar tiers never materialize
        self.mshr_stats = [m.stats for m in h.l1_mshrs]

        # DRAM timing scalars + live shared structures (timing_view is
        # the export hook; busy/open_row stay live-mutable references)
        dv = h.dram.timing_view()
        self.d_channels = dv["channels"]
        self.d_banks = dv["banks_per_channel"]
        self.d_rowsz = dv["row_size_bytes"]
        self.d_hit = dv["hit_cycles"]
        self.d_miss = dv["miss_cycles"]
        self.d_occ = dv["occupancy_cycles"]
        self.d_busy = dv["channel_busy"]
        self.d_open = dv["open_row"]
        self.c_reads = h.dram._reads
        self.c_row_hits = h.dram._row_hits
        self.c_row_misses = h.dram._row_misses
        self.c_queued = h.dram._queued
        self.c_queue_cycles = h.dram._queue_cycles

        native = h.llc.policy is None and h._oracle_observe is None
        if not native:
            self.mode = MODE_FALLBACK
        elif h.prefetchers:
            self.mode = MODE_LEAN
        else:
            self.mode = MODE_MIRROR
        if self.mode == MODE_MIRROR:
            llc_cfg = cfg.llc
            self.m_tags = np.zeros((llc_cfg.sets, llc_cfg.ways), dtype=np.uint64)
            self.m_valid = np.zeros((llc_cfg.sets, llc_cfg.ways), dtype=bool)
            self.set_gen: List[int] = [0] * llc_cfg.sets
            self.set_dirty: List[bool] = [True] * llc_cfg.sets
            self.service = self._service_mirror
        elif self.mode == MODE_LEAN:
            self.service = self._service_lean
        else:
            self.service = self._service_fallback

        # diagnostics consumed by the demotion logic and bench report
        self.planned = 0  # batch members carrying a precomputed verdict
        self.hazards = 0  # verdicts invalidated by a same-set hazard
        self.gate_skips = 0  # merge probes skipped by the batched gate

    # -- batched classification -------------------------------------------
    def prepare_chunk(self, cs, chunk) -> None:
        """Pre-resolve a classified chunk's known-block barriers.

        One batched pass: MSHR no-merge mask, DRAM routes, and (mirror
        mode) LLC membership verdicts stamped with the current set
        generations.  ``CLS_UNKNOWN`` barriers (first-touch pages) have
        no block yet and always run scalar.
        """
        chunk.mp = None
        if self.mode == MODE_FALLBACK:
            return
        mi = np.nonzero(chunk.kind == CLS_MISS)[0]
        if mi.size == 0:
            return
        blocks = chunk.block[mi]

        # batched MSHR gate (see module docstring for the soundness
        # argument: absent-now + unique-in-chunk => cannot merge)
        uniq, inverse, counts = np.unique(
            blocks, return_inverse=True, return_counts=True
        )
        nomerge = counts[inverse] == 1
        inflight = self.mshrs[cs.core_id].inflight_blocks()
        if inflight:
            nomerge &= ~np.isin(
                blocks, np.array(inflight, dtype=np.uint64)
            )

        # vectorized DRAM routes: the pure function of the block address
        baddr = blocks << _U64(self.block_bits)
        row = baddr // _U64(self.d_rowsz)
        hsh = mix64_np(row)
        ch = hsh % _U64(self.d_channels)
        bank = (hsh >> _U64(8)) % _U64(self.d_banks)

        mp = MissPlan()
        mp.pos = mi.tolist()
        mp.nomerge = nomerge.tolist()
        mp.ch = ch.tolist()
        mp.bank = bank.tolist()
        mp.row = row.tolist()
        mp.cur = 0
        mp.n = len(mp.pos)

        if self.mode == MODE_MIRROR:
            si = (blocks & _U64(self.llc_set_mask)).astype(np.int64)
            self._refresh_sets(np.unique(si))
            rows_t = self.m_tags[si]
            hit = ((rows_t == blocks[:, None]) & self.m_valid[si]).any(axis=1)
            sg = self.set_gen
            mp.hit = hit.tolist()
            mp.gen = [sg[s] for s in si.tolist()]
            self.planned += mp.n
        else:
            mp.hit = None
            mp.gen = None
        chunk.mp = mp

    def _refresh_sets(self, sets) -> None:
        """Lazily rebuild mirror rows for sets dirtied since last use."""
        dirty = self.set_dirty
        tags = self.m_tags
        valid = self.m_valid
        export = self.llc.export_set
        for s in sets.tolist():
            if dirty[s]:
                resident = export(s)
                n = len(resident)
                valid[s, :] = False
                if n:
                    valid[s, :n] = True
                    tags[s, :n] = resident
                dirty[s] = False

    # -- the three service variants ---------------------------------------
    # Each returns (total_latency, filled): the exact latency the scalar
    # ``MemoryHierarchy.access`` miss tail would return, and whether the
    # caller must fill its array L1 (False on an MSHR merge).

    def _mshr_head(self, mshr, block, now, probe):
        """Inline expiry + (optional) merge probe; None means no merge."""
        inflight = mshr._inflight
        if now > mshr._clock:
            mshr._clock = now
        mh = mshr._heap
        if mh and mh[0][0] <= now:
            pop = heapq.heappop
            starts = mshr._starts
            while mh and mh[0][0] <= now:
                t, b = pop(mh)
                if inflight.get(b) == t:
                    del inflight[b]
                    starts.pop(b, None)
        if probe:
            t = inflight.get(block)
            if t is not None and t > now:
                return t
        return None

    def _mshr_reserve(self, mshr, core_id, now):
        """Inline ``MshrFile.reserve`` (post-expiry): stall-adjusted start."""
        inflight = mshr._inflight
        overflow = len(inflight) - mshr.entries + 1
        if overflow <= 0:
            return now
        start = heapq.nsmallest(overflow, inflight.values())[-1]
        self.mshr_stats[core_id].add("stalls")
        return max(now, start)

    def _mshr_commit(self, mshr, core_id, block, finish, start):
        """Inline ``MshrFile.commit`` keeping the pending-start heap."""
        mshr._inflight[block] = finish
        if start > mshr._clock:
            mshr._starts[block] = start
            heapq.heappush(mshr._pending, (start, block))
        else:
            mshr._starts.pop(block, None)
        heapq.heappush(mshr._heap, (finish, block))
        self.mshr_stats[core_id].add("allocations")

    def _service_lean(self, cs, index, block, vaddr, now, is_write, mp, pe):
        h = self.h
        core_id = cs.core_id
        mshr = self.mshrs[core_id]
        probe = pe is None or not mp.nomerge[pe]
        merged = self._mshr_head(mshr, block, now, probe)
        if merged is not None:
            self.mshr_stats[core_id].add("merges")
            return (merged - now) + self.l1_hit, False
        if not probe:
            self.gate_skips += 1
        start = self._mshr_reserve(mshr, core_id, now)
        now2 = start + self.l1_hit

        # ---- _llc_access, inlined (native LRU, no oracle, null sink) ----
        self.c_demand_accesses.value += 1
        if now2 > h._now:
            h._now = now2
        if is_write:
            self.c_demand_writes.value += 1
        entries = self.llc_sets[block & self.llc_set_mask]
        state = entries.get(block)
        hit = state is not None
        if hit:
            entries.move_to_end(block)
            wait = max(0.0, state.ready_time - now2)
            if state.prefetched and not state.used:
                state.used = True
                self.c_covered.value += 1
                self.c_prefetch_hits.value += 1
                if wait > 0:
                    self.c_late_covered.value += 1
                self.prefetchers[state.core_id].on_prefetch_used(block)
            else:
                self.c_demand_hits.value += 1
            lat2 = self.llc_hit + wait
            if is_write:
                state.dirty = True
        else:
            self.c_demand_misses.value += 1
            lat2 = self.llc_hit + self._dram_access(now2 + self.llc_hit, block, mp, pe)
            fill_state = BlockState(core_id=core_id, ready_time=now2 + lat2)
            fill_state.used = True
            fill_state.dirty = is_write
            self.llc.fill(block, fill_state)

        # ---- train / trigger the prefetcher (LLC placement) ----
        pf = self.prefetchers[core_id]
        info = AccessInfo(
            pc=int(cs.pcs[index]),
            address=(block << self.block_bits) | (vaddr & self.block_mask),
            block=block,
            hit=hit,
            time=now2,
            core_id=core_id,
            is_write=is_write,
        )
        requests = pf.clamp_degree(pf.on_access(info))
        if requests:
            self._issue_prefetches(pf, core_id, block, requests, now2 + self.llc_hit)

        total = (now2 - now) + self.l1_hit + lat2
        self._mshr_commit(mshr, core_id, block, now + total, start)
        return total, True

    def _service_mirror(self, cs, index, block, vaddr, now, is_write, mp, pe):
        h = self.h
        core_id = cs.core_id
        mshr = self.mshrs[core_id]
        probe = pe is None or not mp.nomerge[pe]
        merged = self._mshr_head(mshr, block, now, probe)
        if merged is not None:
            self.mshr_stats[core_id].add("merges")
            return (merged - now) + self.l1_hit, False
        if not probe:
            self.gate_skips += 1
        start = self._mshr_reserve(mshr, core_id, now)
        now2 = start + self.l1_hit

        self.c_demand_accesses.value += 1
        if now2 > h._now:
            h._now = now2
        if is_write:
            self.c_demand_writes.value += 1
        si = block & self.llc_set_mask
        # conflict detection: trust the batched verdict only while the
        # set's generation is unchanged; a same-set fill since
        # classification demotes this member to the live (scalar) probe
        if pe is not None and mp.gen[pe] == self.set_gen[si]:
            state = None if not mp.hit[pe] else self.llc_sets[si].get(block)
        else:
            if pe is not None:
                self.hazards += 1
            state = self.llc_sets[si].get(block)
        if state is not None:
            entries = self.llc_sets[si]
            entries.move_to_end(block)
            wait = max(0.0, state.ready_time - now2)
            if state.prefetched and not state.used:
                # unreachable without prefetchers; kept for exactness
                state.used = True
                self.c_covered.value += 1
                self.c_prefetch_hits.value += 1
                if wait > 0:
                    self.c_late_covered.value += 1
            else:
                self.c_demand_hits.value += 1
            lat2 = self.llc_hit + wait
            if is_write:
                state.dirty = True
        else:
            self.c_demand_misses.value += 1
            lat2 = self.llc_hit + self._dram_access(now2 + self.llc_hit, block, mp, pe)
            fill_state = BlockState(core_id=core_id, ready_time=now2 + lat2)
            fill_state.used = True
            fill_state.dirty = is_write
            self.llc.fill(block, fill_state)
            self.set_gen[si] += 1
            self.set_dirty[si] = True

        total = (now2 - now) + self.l1_hit + lat2
        self._mshr_commit(mshr, core_id, block, now + total, start)
        return total, True

    def _service_fallback(self, cs, index, block, vaddr, now, is_write, mp, pe):
        """Policy-interface / oracle runs: real ``_llc_access`` per miss."""
        h = self.h
        core_id = cs.core_id
        mshr = self.mshrs[core_id]
        merged = self._mshr_head(mshr, block, now, True)
        if merged is not None:
            self.mshr_stats[core_id].add("merges")
            return (merged - now) + self.l1_hit, False
        start = self._mshr_reserve(mshr, core_id, now)
        now2 = start + self.l1_hit
        paddr = (block << self.block_bits) | (vaddr & self.block_mask)
        result = h._llc_access(
            core_id, int(cs.pcs[index]), paddr, block, now2, is_write
        )
        total = (now2 - now) + self.l1_hit + result.latency
        self._mshr_commit(mshr, core_id, block, now + total, start)
        return total, True

    # -- shared DRAM residue ----------------------------------------------
    def _dram_access(self, t_arr, block, mp, pe):
        """Inline ``DramModel.access``; routes may come precomputed.

        The channel-busy and open-row state is read and advanced live,
        in barrier order — exactly the scalar float sequence.
        """
        if pe is not None:
            ch = mp.ch[pe]
            bank = mp.bank[pe]
            row = mp.row[pe]
        else:
            row = (block << self.block_bits) // self.d_rowsz
            hsh = mix64(row)
            ch = hsh % self.d_channels
            bank = (hsh >> 8) % self.d_banks
        busy = self.d_busy[ch]
        startd = t_arr if t_arr >= busy else busy  # max(now, busy)
        queue_delay = startd - t_arr
        orow = self.d_open[ch]
        if orow.get(bank) == row:
            service = self.d_hit
            self.c_row_hits.value += 1
        else:
            service = self.d_miss
            orow[bank] = row
            self.c_row_misses.value += 1
        self.d_busy[ch] = startd + self.d_occ
        self.c_reads.value += 1
        if queue_delay > 0:
            self.c_queued.value += 1
            self.c_queue_cycles.value += queue_delay
        return queue_delay + service

    # -- demotion support ---------------------------------------------------
    def hazard_rate_exceeded(self) -> bool:
        """The hazard safety valve (reason "hazard"); see module consts."""
        return (
            self.planned >= HAZARD_MIN_PLANNED
            and self.hazards >= HAZARD_DEMOTE_RATE * self.planned
        )
