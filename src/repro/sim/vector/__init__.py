"""Vectorized batch-replay engine tier (requires NumPy).

Importing this package is the engine's capability probe: it raises a
clear ``ImportError`` when NumPy is missing, and
``SimulationEngine._vector_path_eligible`` treats that as "tier
unavailable" and falls back to the scalar compiled loop.  Keeping the
probe here (rather than scattering ``try: import numpy`` through the
kernels) means a numpy-free install degrades in exactly one place —
and the import-surface test can assert the failure is loud.
"""

from __future__ import annotations

try:
    import numpy  # noqa: F401
except ImportError as exc:  # pragma: no cover - exercised via tests
    raise ImportError(
        "repro.sim.vector requires numpy (declared in pyproject.toml as "
        "numpy>=1.24); install it or run with vectorized=False"
    ) from exc

from repro.sim.vector.classify import (  # noqa: E402
    CLS_COMPUTE,
    CLS_HIT,
    CLS_MISS,
    CLS_UNKNOWN,
    Chunk,
    classify_chunk,
    reclassify_set,
    reclassify_vpage,
)
from repro.sim.vector.replay import VectorReplay  # noqa: E402

__all__ = [
    "CLS_COMPUTE",
    "CLS_HIT",
    "CLS_MISS",
    "CLS_UNKNOWN",
    "Chunk",
    "classify_chunk",
    "reclassify_set",
    "reclassify_vpage",
    "VectorReplay",
]
