"""Chunk classification: partitioning a trace slice by L1 outcome.

The vectorized tier rests on one observation about the simulated
hierarchy: between two L1 misses of one core, *nothing* that core does
touches shared state.  L1 hits and compute instructions read and write
only the core's private timing state and its private L1 LRU order, and
the L1's *contents* change only when a miss fills.  So the set of
blocks resident in a core's L1 is invariant across any run of
hit/compute instructions, and the hit/miss outcome of every access in
that run can be decided up front with one batched tag-membership test.

:func:`classify_chunk` does exactly that for a slice of the packed
trace: each record is labelled

* ``CLS_COMPUTE`` — not a memory access;
* ``CLS_HIT`` — its block is resident in the (mirrored) L1 tag array;
* ``CLS_MISS`` — mapped, but not resident;
* ``CLS_UNKNOWN`` — its virtual page has no frame yet.  First-touch
  pages are *always* misses (an unmapped page cannot have a resident
  block), so unknowns are simply misses whose physical block number is
  decided later, at the barrier, by the real translator — preserving
  the shared seeded PRNG's allocation order exactly.

Misses and unknowns are the scalar **barriers**: the replay driver
stops the batch there and routes the access through the real
MSHR/LLC/DRAM objects.  A barrier's L1 fill (and possible eviction)
changes the set it lands in, so the not-yet-replayed tail of the chunk
is *reclassified* incrementally: :func:`reclassify_set` re-tests only
the entries indexed into the filled set, and :func:`reclassify_vpage`
resolves the entries of a just-mapped page.

Beyond the ``kind`` labels the chunk carries derived per-record arrays
the timing kernels consume directly — ``hitv``/``depv``/``loadv``
masks, the flat stamp ``slots`` of each hit, and ``addlat`` (the
latency each record adds to its dispatch time: ALU for compute, the L1
hit latency for hits).  Computing these once per chunk, and patching
them in place on reclassification, keeps the per-stretch kernel down
to a handful of NumPy calls.
"""

from __future__ import annotations

import numpy as np

#: classification codes (uint8): compute / L1 hit / L1 miss / unmapped page
CLS_COMPUTE = 0
CLS_HIT = 1
CLS_MISS = 2
CLS_UNKNOWN = 3

#: CoreTimingModel.ALU_LATENCY — what a non-memory record adds to dispatch
_ALU_LATENCY = 1.0


class Chunk:
    """One classified slice ``[start, end)`` of a core's packed trace.

    All arrays are chunk-relative and index-aligned with the trace
    records; ``block``/``setidx``/``way`` are meaningful only where
    ``kind`` is ``CLS_HIT`` or ``CLS_MISS``, ``vpage`` only where the
    record is a memory access.  The derived arrays:

    ``hitv``
        ``kind == CLS_HIT`` as a bool mask (the records a stretch
        treats as L1 hits).
    ``depv`` / ``loadv``
        hits that depend on the previous load / hits that are loads.
    ``slots``
        flat ``set * ways + way`` stamp index per hit (garbage
        elsewhere).
    ``addlat``
        per-record completion delta: hit latency for hits, ALU latency
        otherwise (barrier positions never read it).
    """

    __slots__ = (
        "start",
        "end",
        "kind",
        "block",
        "setidx",
        "way",
        "vpage",
        "hitv",
        "depv",
        "loadv",
        "slots",
        "addlat",
        "depflag",
        "loadflag",
        "any_dep",
        "mp",
    )

    def __init__(self, start, end, kind, block, setidx, way, vpage) -> None:
        self.start = start
        self.end = end
        self.kind = kind
        self.block = block
        self.setidx = setidx
        self.way = way
        self.vpage = vpage
        # batched miss plan (repro.sim.vector.misspath.MissPlan), attached
        # by the miss path's prepare pass; None means fully scalar barriers
        self.mp = None


def _block_of(frames, vaddrs, page_bits: int, block_bits: int):
    """Physical block numbers: ``(frame << page_bits | offset) >> block_bits``."""
    shift = np.uint64(page_bits - block_bits)
    page_mask = np.uint64((1 << page_bits) - 1)
    return (frames << shift) | ((vaddrs & page_mask) >> np.uint64(block_bits))


def _membership(blocks, setidx, tags, valid):
    """Batched tag-array lookup: (hit mask, matching way) per block."""
    rows = tags[setidx]
    match = (rows == blocks[:, None]) & valid[setidx]
    return match.any(axis=1), match.argmax(axis=1)


def _derive(chunk: Chunk, flags, ways: int, hit_lat: float) -> None:
    """(Re)build the kernel-facing arrays from ``kind`` wholesale."""
    f = flags[chunk.start : chunk.end]
    chunk.depflag = (f & 4) != 0
    chunk.loadflag = (f & 2) == 0
    chunk.any_dep = bool(chunk.depflag.any())
    hitv = chunk.kind == CLS_HIT
    chunk.hitv = hitv
    chunk.depv = hitv & chunk.depflag
    chunk.loadv = hitv & chunk.loadflag
    chunk.slots = chunk.setidx * ways + chunk.way
    addlat = np.full(chunk.kind.shape, _ALU_LATENCY)
    addlat[hitv] = hit_lat
    chunk.addlat = addlat


def classify_chunk(
    start: int,
    end: int,
    addrs,
    flags,
    mapping,
    core_id: int,
    tags,
    valid,
    page_bits: int,
    block_bits: int,
    set_mask,
    ways: int,
    hit_lat: float,
) -> Chunk:
    """Classify records ``[start, end)`` against the current L1 mirror.

    ``mapping`` is the live translator's ``(core_id, vpage) -> frame``
    dict, read per *unique* page in the chunk (spatial workloads revisit
    the same pages, so the dict probes amortise to far below one per
    record).
    """
    n = end - start
    kind = np.zeros(n, np.uint8)
    block = np.zeros(n, np.uint64)
    setidx = np.zeros(n, np.int64)
    way = np.zeros(n, np.int64)
    vpage = np.zeros(n, np.uint64)
    chunk = Chunk(start, end, kind, block, setidx, way, vpage)
    f = flags[start:end]
    mem = np.nonzero(f & 1)[0]
    if mem.size == 0:
        _derive(chunk, flags, ways, hit_lat)
        return chunk

    va = addrs[start:end][mem]
    vp = va >> np.uint64(page_bits)
    vpage[mem] = vp
    uniq, inverse = np.unique(vp, return_inverse=True)
    frames = np.zeros(uniq.size, np.uint64)
    known = np.zeros(uniq.size, bool)
    get = mapping.get
    for i, page in enumerate(uniq.tolist()):
        frame = get((core_id, page))
        if frame is not None:
            frames[i] = frame
            known[i] = True

    known_mem = known[inverse]
    kind[mem[~known_mem]] = CLS_UNKNOWN
    sel = np.nonzero(known_mem)[0]
    if sel.size:
        km = mem[sel]
        blk = _block_of(frames[inverse[sel]], va[sel], page_bits, block_bits)
        si = (blk & set_mask).astype(np.int64)
        hit, w = _membership(blk, si, tags, valid)
        kind[km] = np.where(hit, CLS_HIT, CLS_MISS)
        block[km] = blk
        setidx[km] = si
        way[km] = w
    _derive(chunk, flags, ways, hit_lat)
    return chunk


def resolve_blocks(
    start: int,
    end: int,
    addrs,
    flags,
    mapping,
    core_id: int,
    page_bits: int,
    block_bits: int,
):
    """Batched Translator frame lookups for a drain window.

    Returns ``(blocks, vpages)``: per-record physical block numbers as
    int64 (−1 for non-memory records and still-unmapped pages) and the
    per-record virtual page (0 for non-memory records).  This is the
    translation half of :func:`classify_chunk` without the membership
    test — the drain walker probes its residency dict per record, so
    only the frame resolution is worth batching.
    """
    n = end - start
    out = np.full(n, -1, dtype=np.int64)
    vpages = np.zeros(n, dtype=np.uint64)
    f = flags[start:end]
    mem = np.nonzero(f & 1)[0]
    if mem.size == 0:
        return out, vpages
    va = addrs[start:end][mem]
    vp = va >> np.uint64(page_bits)
    vpages[mem] = vp
    uniq, inverse = np.unique(vp, return_inverse=True)
    frames = np.zeros(uniq.size, np.uint64)
    known = np.zeros(uniq.size, bool)
    get = mapping.get
    for i, page in enumerate(uniq.tolist()):
        frame = get((core_id, page))
        if frame is not None:
            frames[i] = frame
            known[i] = True
    sel = np.nonzero(known[inverse])[0]
    if sel.size:
        blk = _block_of(frames[inverse[sel]], va[sel], page_bits, block_bits)
        out[mem[sel]] = blk.astype(np.int64)
    return out, vpages


def reclassify_set(
    chunk: Chunk, pos: int, set_index: int, tags, valid, ways: int, hit_lat: float
) -> None:
    """Re-test the chunk tail's entries of one set after a barrier fill.

    ``pos`` is the absolute trace index of the first not-yet-replayed
    record.  Only already-mapped entries indexed into ``set_index`` can
    have changed outcome (the fill inserted one block and may have
    evicted another), so only those are re-tested.
    """
    rel = pos - chunk.start
    k = chunk.kind[rel:]
    cand = ((k == CLS_HIT) | (k == CLS_MISS)) & (chunk.setidx[rel:] == set_index)
    idx = np.nonzero(cand)[0]
    if idx.size == 0:
        return
    idx += rel
    blk = chunk.block[idx]
    match = (tags[set_index][None, :] == blk[:, None]) & valid[set_index][None, :]
    hit = match.any(axis=1)
    w = match.argmax(axis=1)
    chunk.kind[idx] = np.where(hit, CLS_HIT, CLS_MISS)
    chunk.way[idx] = w
    chunk.hitv[idx] = hit
    chunk.depv[idx] = hit & chunk.depflag[idx]
    chunk.loadv[idx] = hit & chunk.loadflag[idx]
    chunk.slots[idx] = chunk.setidx[idx] * ways + w
    chunk.addlat[idx] = np.where(hit, hit_lat, _ALU_LATENCY)


def reclassify_vpage(
    chunk: Chunk,
    pos: int,
    vpage: int,
    frame: int,
    addrs,
    tags,
    valid,
    page_bits: int,
    block_bits: int,
    set_mask,
    ways: int,
    hit_lat: float,
) -> None:
    """Resolve the chunk tail's ``CLS_UNKNOWN`` entries of one page.

    Called right after a first-touch barrier allocated ``frame`` for
    ``vpage``: the page's remaining accesses now have physical blocks
    and are classified against the *post-fill* tag state.
    """
    rel = pos - chunk.start
    cand = (chunk.kind[rel:] == CLS_UNKNOWN) & (
        chunk.vpage[rel:] == np.uint64(vpage)
    )
    idx = np.nonzero(cand)[0]
    if idx.size == 0:
        return
    idx += rel
    va = addrs[chunk.start + idx]
    blk = _block_of(np.uint64(frame), va, page_bits, block_bits)
    si = (blk & set_mask).astype(np.int64)
    hit, w = _membership(blk, si, tags, valid)
    chunk.kind[idx] = np.where(hit, CLS_HIT, CLS_MISS)
    chunk.block[idx] = blk
    chunk.setidx[idx] = si
    chunk.way[idx] = w
    chunk.hitv[idx] = hit
    chunk.depv[idx] = hit & chunk.depflag[idx]
    chunk.loadv[idx] = hit & chunk.loadflag[idx]
    chunk.slots[idx] = si * ways + w
    chunk.addlat[idx] = np.where(hit, hit_lat, _ALU_LATENCY)
