"""NumPy batch replay over packed trace arenas: the vectorized tier.

The scalar compiled loop (:meth:`SimulationEngine._run_until_compiled`)
interleaves cores by a dispatch-time heap and walks records one at a
time.  This module replays the same packed traces with the same global
semantics but batches everything that does not touch shared state:

* **Barrier decomposition.**  Only L1 *misses* reach shared machinery
  (per-core MSHRs keyed by call order, the shared LLC/DRAM, the
  translator's shared frame PRNG, ``hierarchy._now``).  L1 hits and
  compute instructions touch nothing but their core's private timing
  state and additive stat counters, so they commute with every other
  core's work.  The driver therefore runs each core up to its next miss
  (the "barrier"), then executes pending barriers one at a time in
  global ``(dispatch, core_id)`` order — exactly the order the scalar
  heap pops them, because per-core dispatch times strictly increase and
  heap ties break by core id.  When a core's next barrier dispatches
  strictly before every other pending barrier, it is executed inline
  without a heap round-trip (the pop would return it anyway).

* **Array L1s.**  Each core's L1D lives in preallocated tag/valid
  arrays plus an LRU *stamp* per way holding the instruction index of
  the block's last touch.  Per-instruction indices are unique, so
  ``argmin(stamp)`` reproduces the ``OrderedDict`` LRU victim exactly;
  hit touches commit with an ordered scatter (later touches of a block
  overwrite earlier ones, so the surviving stamp is the latest).

* **Bit-exact timing kernels.**  Dispatch chains use sequential
  ``np.add.accumulate`` (same float additions, same order, as the
  scalar loop); ROB readiness is handled by *anchored retry* — assume
  the pure chain, find the first position where the retire ring binds,
  commit the exact prefix, anchor that one instruction on the exact
  ring value, and retry.  Dependent-load serialisation is fixed up by
  a short scalar pass over just the dependent positions.  Every float
  the kernels produce is the result of the same operations in the same
  order as the scalar loop, so ``SimResult``\\ s match field for field.

* **A batched miss path** (:mod:`repro.sim.vector.misspath`).  Each
  classified chunk's known-block barriers are pre-resolved in one
  NumPy pass — MSHR no-merge gate, DRAM routes, and (without
  prefetchers) generation-guarded LLC membership verdicts — and the
  barriers themselves run through an inlined service routine instead
  of the full ``MemoryHierarchy.access`` call chain.  Members whose
  verdicts are invalidated by cross-core ordering hazards re-resolve
  against the live structures, so outcomes stay exact.

* **A scalar drain mode for miss-dense stretches.**  Batching only
  pays when stretches between barriers are long; on miss-dense traces
  (the ``mix*`` workloads run ~74 % L1 miss rates under cold caches)
  chunk classification, reclassification, and the per-barrier tail
  scan are pure overhead.  Instead of demoting the whole run, each
  core tracks its recent records-per-barrier and *drains* dense
  stretches scalar: frame lookups are still batched per window
  (:func:`repro.sim.vector.classify.resolve_blocks`), but records walk
  a plain-Python loop against a residency dict — the compiled loop's
  arithmetic verbatim, minus its heap and per-record hierarchy calls —
  and barriers go through the same inlined miss path.  Hysteresis
  (:data:`DRAIN_ENTER` / :data:`DRAIN_EXIT`) keeps the mode stable,
  and the core re-enters batch mode when stretches lengthen.

* **Demotion as a safety valve.**  With the drain mode carrying
  miss-dense stretches, the vector tier no longer hands miss-dense
  runs to the compiled loop: :data:`DEMOTE_STRETCH` defaults to 0, so
  the density probe always passes.  Demotion remains for two cases,
  counted per reason in ``engine_tier_counters()``: runs whose LLC has
  a replacement-policy interface or Belady oracle attached (the miss
  path's ``fallback`` mode keeps the scalar ``_llc_access`` per miss,
  so sub-:data:`DEMOTE_STRETCH_FALLBACK` stretches demote, reason
  ``ineligible_policy``) and a batched-verdict hazard-rate valve
  (reason ``hazard``).  The handoff itself is unchanged: core state is
  written back exactly as at end-of-advance and the array L1s are
  materialised into the real ``Cache`` objects in stamp (LRU) order,
  so the compiled loop continues from byte-identical state.
"""

from __future__ import annotations

import heapq
import os
from typing import List, Optional

import numpy as np

from repro.sim.vector.classify import (
    CLS_MISS,
    Chunk,
    _block_of,
    classify_chunk,
    reclassify_set,
    reclassify_vpage,
    resolve_blocks,
)
from repro.sim.vector.misspath import MODE_FALLBACK, MissPath

#: starting / bounding chunk sizes (records) for adaptive chunking
DEFAULT_CHUNK = 4096
MIN_CHUNK = 256
MAX_CHUNK = 32768
#: barriers per chunk the adaptive sizing steers toward
TARGET_BARRIERS = 8
#: stretches at or below this length run the scalar-lean kernel
SCALAR_CUTOFF = 24
#: cap on one anchored-retry attempt, bounding per-violation rework
ATTEMPT_MAX = 4096
#: a violation this close to the attempt start counts as "early"; two
#: in a row switch the stretch to the scalar kernel for one ROB window
EARLY_VIOLATION = 16
#: demotion probe: after this many barriers, compare the mean stretch
PROBE_BARRIERS = 512
#: mean records-per-barrier below which the probe demotes.  0 by
#: default: with the drain mode carrying dense stretches the probe
#: always passes; the module global stays because tests (and callers
#: wanting the old behaviour) monkeypatch it up.
DEMOTE_STRETCH = 0
#: probe threshold for the miss path's ``fallback`` mode (LLC policy
#: interface or Belady oracle attached): every miss still pays the full
#: scalar ``_llc_access``, so dense runs are better off compiled
DEMOTE_STRETCH_FALLBACK = 24

#: drain-mode hysteresis, in mean records between barriers: a core
#: below ENTER switches its batching off; above EXIT switches it back.
#: Measured batch break-even on a 1-CPU host is ~100 records/barrier
#: (below that, per-stretch NumPy call overhead plus chunk
#: (re)classification outweigh what batching saves).
DRAIN_ENTER = 96
DRAIN_EXIT = 192
#: records between drain/batch mode decisions, and the drain window
#: (records whose frame lookups are batched per ``resolve_blocks`` call)
DECIDE_MIN = 1024
DRAIN_WINDOW = 4096

#: sentinel: a draining core switched back to batch mode mid-call
_SWITCH = object()


class _CoreState:
    """Private replay state of one core: trace views, timing, array L1."""

    __slots__ = (
        "core_id",
        "pcs",
        "addrs",
        "flags",
        "count",
        "ring",
        "rob",
        "interval",
        "last_dispatch",
        "last_retire",
        "last_llc",
        "tags",
        "valid",
        "valid_count",
        "stamp",
        "resident",
        "chunk",
        "chunk_records",
        "pend_hits",
        "barriers",
        "drain",
        "stamp_list",
        "ring_list",
        "blk",
        "vp",
        "fl",
        "win_base",
        "win_end",
        "dec_count",
        "dec_barriers",
        "bufd",
        "bufr",
        "bufc",
        "bufg",
        "bufb",
    )

    def __init__(self, core_id, arena, core, sets, ways) -> None:
        self.core_id = core_id
        records = arena.records
        self.pcs = np.frombuffer(arena.pcs, dtype=np.uint64, count=records)
        self.addrs = np.frombuffer(
            arena.addresses, dtype=np.uint64, count=records
        )
        self.flags = np.frombuffer(arena.flags, dtype=np.uint8, count=records)
        self.count = core._count
        self.rob = core._rob
        self.interval = core._dispatch_interval
        self.ring = np.array(core._retire_ring, dtype=np.float64)
        self.last_dispatch = core._last_dispatch
        self.last_retire = core._last_retire
        self.last_llc = core._last_load_complete
        self.tags = np.zeros((sets, ways), dtype=np.uint64)
        self.valid = np.zeros((sets, ways), dtype=bool)
        self.valid_count = [0] * sets
        self.stamp = np.zeros(sets * ways, dtype=np.int64)
        # block -> flat stamp slot, maintained alongside the tag arrays;
        # the drain walker's residency probe (caches start empty when the
        # replay is constructed, so empty is exact)
        self.resident = {}
        self.chunk: Optional[Chunk] = None
        self.chunk_records = DEFAULT_CHUNK
        self.pend_hits = 0
        self.barriers = 0
        # drain mode: Python-list twins of stamp/ring (authoritative
        # while draining; synced at mode switches) plus the current
        # window's resolved blocks/pages/flags
        self.drain = False
        self.stamp_list = None
        self.ring_list = None
        self.blk = None
        self.vp = None
        self.fl = None
        self.win_base = 0
        self.win_end = 0
        self.dec_count = self.count
        self.dec_barriers = 0
        # scratch buffers for the attempt kernels (never observable)
        self.bufd = np.empty(ATTEMPT_MAX + 1, dtype=np.float64)
        self.bufr = np.empty(ATTEMPT_MAX + 1, dtype=np.float64)
        self.bufc = np.empty(ATTEMPT_MAX, dtype=np.float64)
        self.bufg = np.empty(ATTEMPT_MAX, dtype=np.float64)
        self.bufb = np.empty(ATTEMPT_MAX, dtype=bool)


class VectorReplay:
    """Batch-replays a compiled workload against the engine's hierarchy."""

    def __init__(self, engine, chunk_records: Optional[int] = None) -> None:
        self.engine = engine
        h = engine.hierarchy
        self.h = h
        amap = h.address_map
        self.page_bits = amap.page_bits
        self.block_bits = amap.block_bits
        self.block_mask = amap.block_size - 1
        l1cfg = h.config.l1d
        self.hit_lat = l1cfg.hit_latency
        self.ways = l1cfg.ways
        self.set_mask = np.uint64(l1cfg.sets - 1)
        if chunk_records is None:
            env = os.environ.get("REPRO_VECTOR_CHUNK")
            chunk_records = int(env) if env else None
        self.fixed_chunk = chunk_records
        self.cores: List[_CoreState] = []
        for core_id, core in enumerate(engine.cores):
            arena = engine.workload.packed(core_id)
            cs = _CoreState(core_id, arena, core, l1cfg.sets, l1cfg.ways)
            if chunk_records is not None:
                cs.chunk_records = max(1, chunk_records)
            self.cores.append(cs)
        # whether a full-ring window (m >= rob) can ever bind mid-attempt:
        # within-attempt completes trail the chain by at most max(hit, ALU)
        # latency, and the chain advances rob*interval per ROB turn
        rob = self.cores[0].rob if self.cores else 0
        interval = self.cores[0].interval if self.cores else 0.0
        self.rob_slack = rob * interval >= max(self.hit_lat, 1.0) + 1.0
        self.misspath = MissPath(self)
        self.demoted = False
        self._barriers_seen = 0
        self._probe_done = False
        self._demote_reason = "stretch_probe"

    # -- the driver -------------------------------------------------------
    def advance(self, budget_per_core: int) -> None:
        """Advance every core to ``budget_per_core`` retired instructions."""
        if self.demoted:
            self._advance_demoted(budget_per_core)
            return
        try:
            pending = []
            for cs in self.cores:
                dispatch = self._run_to_barrier(cs, budget_per_core)
                if dispatch is not None:
                    pending.append((dispatch, cs.core_id))
            heapq.heapify(pending)
            while pending:
                _, core_id = heapq.heappop(pending)
                cs = self.cores[core_id]
                while True:
                    if cs.drain:
                        self._execute_barrier_drain(cs)
                    else:
                        self._execute_barrier(cs)
                    if not self._probe_done and self._should_demote():
                        self.demoted = True
                        break
                    dispatch = self._run_to_barrier(cs, budget_per_core)
                    if dispatch is None:
                        break
                    if pending and (dispatch, core_id) >= pending[0]:
                        heapq.heappush(pending, (dispatch, core_id))
                        break
                    # same-core continuation: this barrier dispatches
                    # strictly before every pending one (tuples with
                    # distinct core ids never tie), so the heap would
                    # pop it right back — execute it inline instead
                if self.demoted:
                    break
        finally:
            self._writeback()
        if self.demoted:
            self._materialize_l1(self._demote_reason)
            self._advance_demoted(budget_per_core)

    def _should_demote(self) -> bool:
        """Demotion safety valves; see the module docstring."""
        self._barriers_seen += 1
        if self.misspath.hazard_rate_exceeded():
            self._demote_reason = "hazard"
            return True
        if self._barriers_seen < PROBE_BARRIERS:
            return False
        stretch = DEMOTE_STRETCH
        if self.misspath.mode == MODE_FALLBACK:
            if DEMOTE_STRETCH_FALLBACK > stretch:
                stretch = DEMOTE_STRETCH_FALLBACK
            reason = "ineligible_policy"
        else:
            reason = "stretch_probe"
        replayed = sum(cs.count for cs in self.cores)
        if replayed >= self._barriers_seen * stretch:
            self._probe_done = True  # batching (or draining) pays, stay
            return False
        self._demote_reason = reason
        return True

    def _advance_demoted(self, budget_per_core: int) -> None:
        """Hand the rest of the run to the scalar compiled loop."""
        engine = self.engine
        arenas = [
            engine.workload.packed(core_id)
            for core_id in range(len(self.cores))
        ]
        # record index == retired count: every packed record retires one
        # instruction, so the cores' own counts are the resume cursors
        cursors = [core._count for core in engine.cores]
        engine._run_until_compiled(arenas, cursors, budget_per_core)

    def _materialize_l1(self, reason: str) -> None:
        """Rebuild the real L1 ``Cache`` objects from the array mirrors.

        The compiled loop probes the real ``OrderedDict`` sets, which
        the vector tier never touched.  Residency is the mirror's tag
        arrays; recency is the stamp order (each stamp is the block's
        last-touch instruction index, so inserting oldest-first makes
        ``popitem(last=False)`` evict exactly ``argmin(stamp)``).  L1
        block metadata needs no reconstruction: the demand fill path
        always inserts a default ``BlockState`` and hits never mutate
        it, so order *is* the entire state.
        """
        from repro.memsys.cache import BlockState
        from repro.sim.engine import _TIER_RUNS

        _TIER_RUNS["demoted"] += 1
        _TIER_RUNS["demoted_" + reason] += 1
        ways = self.ways
        for cs in self.cores:
            l1 = self.h.l1ds[cs.core_id]
            stamp = cs.stamp_list if cs.drain else cs.stamp.tolist()
            tags = cs.tags
            for set_index, entries in enumerate(l1._sets):
                filled = cs.valid_count[set_index]
                if not filled:
                    continue
                base = set_index * ways
                order = sorted(range(filled), key=lambda w: stamp[base + w])
                for w in order:
                    entries[int(tags[set_index, w])] = BlockState(
                        core_id=cs.core_id
                    )

    def _next_dispatch(self, cs: _CoreState) -> float:
        dispatch = cs.last_dispatch + cs.interval
        if cs.count >= cs.rob:
            ring = cs.ring_list if cs.drain else cs.ring
            ready = ring[cs.count % cs.rob]
            if ready > dispatch:
                dispatch = ready
        return float(dispatch)

    # -- drain/batch mode selection ---------------------------------------
    def _decide_mode(self, cs: _CoreState) -> None:
        """Hysteresis over the core's recent records-per-barrier."""
        rec = cs.count - cs.dec_count
        if rec < DECIDE_MIN:
            return
        bar = cs.barriers - cs.dec_barriers
        cs.dec_count = cs.count
        cs.dec_barriers = cs.barriers
        stretch = rec / bar if bar else float("inf")
        if cs.drain:
            if stretch >= DRAIN_EXIT:
                self._sync_to_batch(cs)
        elif stretch <= DRAIN_ENTER:
            self._sync_to_drain(cs)

    def _sync_to_drain(self, cs: _CoreState) -> None:
        cs.stamp_list = cs.stamp.tolist()
        cs.ring_list = cs.ring.tolist()
        cs.drain = True
        cs.chunk = None
        cs.win_end = cs.count  # force window prep

    def _sync_to_batch(self, cs: _CoreState) -> None:
        cs.stamp[:] = cs.stamp_list
        cs.ring[:] = cs.ring_list
        cs.drain = False
        cs.chunk = None

    # -- running a core to its next barrier -------------------------------
    def _run_to_barrier(
        self, cs: _CoreState, budget: int
    ) -> Optional[float]:
        """Advance the core to its next barrier (or the budget).

        Returns the barrier's exact dispatch time for the global order
        heap, or None when the core has retired its budget first.
        """
        while True:
            if cs.count >= budget:
                return None
            if cs.drain:
                r = self._drain_to_barrier(cs, budget)
                if r is not _SWITCH:
                    return r
                continue
            chunk = cs.chunk
            if chunk is None or cs.count >= chunk.end:
                self._decide_mode(cs)
                if cs.drain:
                    continue
                chunk = self._load_chunk(cs, budget)
            rel = cs.count - chunk.start
            tail = chunk.kind[rel:] >= CLS_MISS
            first = int(np.argmax(tail))
            if not tail[first]:
                if chunk.end > cs.count:
                    self._time_stretch(cs, chunk, cs.count, chunk.end)
                continue
            bpos = chunk.start + rel + first
            if bpos > cs.count:
                self._time_stretch(cs, chunk, cs.count, bpos)
            if bpos >= budget:
                return None
            return self._next_dispatch(cs)

    def _load_chunk(self, cs: _CoreState, budget: int) -> Chunk:
        start = cs.count
        end = min(start + cs.chunk_records, budget)
        chunk = classify_chunk(
            start,
            end,
            cs.addrs,
            cs.flags,
            self.h.translator.mapping_view(),
            cs.core_id,
            cs.tags,
            cs.valid,
            self.page_bits,
            self.block_bits,
            self.set_mask,
            self.ways,
            self.hit_lat,
        )
        cs.chunk = chunk
        self.misspath.prepare_chunk(cs, chunk)
        if self.fixed_chunk is None:
            barriers = int((chunk.kind >= CLS_MISS).sum())
            if barriers > 2 * TARGET_BARRIERS:
                cs.chunk_records = max(MIN_CHUNK, cs.chunk_records // 2)
            elif barriers < TARGET_BARRIERS // 2:
                cs.chunk_records = min(MAX_CHUNK, cs.chunk_records * 2)
        return chunk

    # -- drain mode --------------------------------------------------------
    def _prep_window(self, cs: _CoreState, budget: int) -> None:
        base = cs.count
        end = min(base + DRAIN_WINDOW, budget)
        blk, vp = resolve_blocks(
            base,
            end,
            cs.addrs,
            cs.flags,
            self.h.translator.mapping_view(),
            cs.core_id,
            self.page_bits,
            self.block_bits,
        )
        cs.win_base = base
        cs.win_end = end
        cs.blk = blk.tolist()
        cs.vp = vp
        cs.fl = cs.flags[base:end].tolist()

    def _drain_to_barrier(self, cs: _CoreState, budget: int):
        """Scalar-walk a draining core to its next barrier.

        The compiled loop's per-record arithmetic verbatim — Python
        floats through the same operations in the same order — with
        residency decided by the ``resident`` dict and frame lookups
        pre-batched per window.  Returns the barrier's dispatch time,
        None at the budget, or :data:`_SWITCH` if the core left drain
        mode at a window boundary.
        """
        while True:
            if cs.count >= budget:
                return None
            if cs.count >= cs.win_end:
                self._decide_mode(cs)
                if not cs.drain:
                    return _SWITCH
                self._prep_window(cs, budget)
            i = cs.count
            base = cs.win_base
            end = cs.win_end
            fl = cs.fl
            bl = cs.blk
            resident = cs.resident
            stamp_list = cs.stamp_list
            ring_list = cs.ring_list
            rob = cs.rob
            interval = cs.interval
            lat = self.hit_lat
            last_dispatch = cs.last_dispatch
            last_retire = cs.last_retire
            last_llc = cs.last_llc
            pend = 0
            barrier = False
            while i < end:
                dispatch = last_dispatch + interval
                if i >= rob:
                    ready = ring_list[i % rob]
                    if ready > dispatch:
                        dispatch = ready
                bits = fl[i - base]
                if bits & 1:
                    slot = resident.get(bl[i - base], -1)
                    if slot < 0:
                        barrier = True
                        break
                    issue = dispatch
                    if bits & 4 and last_llc > issue:
                        issue = last_llc
                    complete = issue + lat
                    if not bits & 2:
                        last_llc = complete
                    stamp_list[slot] = i
                    pend += 1
                else:
                    complete = dispatch + 1.0  # CoreTimingModel.ALU_LATENCY
                if complete > last_retire:
                    last_retire = complete
                ring_list[i % rob] = last_retire
                i += 1
                last_dispatch = dispatch
            cs.count = i
            cs.last_dispatch = float(last_dispatch)
            cs.last_retire = float(last_retire)
            cs.last_llc = float(last_llc)
            cs.pend_hits += pend
            if barrier:
                # the barrier record is NOT consumed; its dispatch is
                # recomputed identically by _next_dispatch for the heap
                return float(dispatch)

    def _patch_window(self, cs: _CoreState, j: int, vpage: int, frame: int):
        """Resolve a just-mapped page's remaining window records."""
        tail = cs.vp[j + 1 :]
        idx = np.nonzero(tail == np.uint64(vpage))[0]
        if idx.size == 0:
            return
        va = cs.addrs[cs.win_base + j + 1 : cs.win_end][idx]
        blk = _block_of(
            np.uint64(frame), va, self.page_bits, self.block_bits
        ).astype(np.int64)
        bl = cs.blk
        off = j + 1
        for k, b in zip(idx.tolist(), blk.tolist()):
            bl[off + k] = b

    def _execute_barrier_drain(self, cs: _CoreState) -> None:
        """One drain-mode barrier against the shared miss path."""
        h = self.h
        index = cs.count
        j = index - cs.win_base
        bits = cs.fl[j]
        is_write = bool(bits & 2)
        core_id = cs.core_id

        dispatch = self._next_dispatch(cs)
        issue = dispatch
        if bits & 4 and cs.last_llc > issue:
            issue = cs.last_llc
        now = issue

        vaddr = int(cs.addrs[index])
        block = cs.blk[j]
        if block < 0:
            # first touch: the real translator allocates (preserving the
            # shared PRNG's draw order), then the page's remaining window
            # records resolve in place
            paddr0 = h.translator.translate(core_id, vaddr)
            block = paddr0 >> self.block_bits
            self._patch_window(
                cs, j, vaddr >> self.page_bits, paddr0 >> self.page_bits
            )
            slot = cs.resident.get(block, -1)
            if slot >= 0:
                # already resident (page mapped but unresolved when the
                # window was prepped): an ordinary L1 hit, replayed at
                # barrier granularity — touches no shared state
                complete = now + self.hit_lat
                if not is_write:
                    cs.last_llc = float(complete)
                cs.stamp_list[slot] = index
                cs.pend_hits += 1
                self._retire_barrier(cs, index, dispatch, complete)
                return
        set_index = block & int(self.set_mask)

        h._l1_accesses[core_id].value += 1
        h._l1_misses[core_id].value += 1
        latency, filled = self.misspath.service(
            cs, index, block, vaddr, now, is_write, None, None
        )
        if filled:
            self._fill(cs, block, set_index, index)
        complete = now + latency
        if not is_write:
            cs.last_llc = float(complete)
        self._retire_barrier(cs, index, dispatch, complete)
        cs.barriers += 1

    def _retire_barrier(self, cs, index, dispatch, complete) -> None:
        retire = cs.last_retire
        if complete > retire:
            retire = complete
        if cs.drain:
            cs.ring_list[index % cs.rob] = retire
        else:
            cs.ring[index % cs.rob] = retire
        cs.count = index + 1
        cs.last_dispatch = dispatch
        cs.last_retire = float(retire)

    # -- hit/compute stretches --------------------------------------------
    def _time_stretch(
        self, cs: _CoreState, chunk: Chunk, start: int, stop: int
    ) -> None:
        """Replay records ``[start, stop)`` — all L1 hits or compute."""
        rel0 = start - chunk.start
        rel1 = stop - chunk.start
        hid = np.nonzero(chunk.hitv[rel0:rel1])[0]
        if hid.size:
            # ordered LRU touches: later touches of a slot overwrite
            # earlier ones, leaving each block's *latest* index
            cs.stamp[chunk.slots[rel0:rel1][hid]] = start + hid
            cs.pend_hits += int(hid.size)
        if stop - start <= SCALAR_CUTOFF:
            self._time_scalar(cs, chunk, rel0, rel1)
        else:
            self._time_vector(cs, chunk, rel0, rel1)

    def _time_scalar(self, cs, chunk, rel0: int, rel1: int) -> None:
        """Scalar-lean kernel: the compiled loop's arithmetic, verbatim."""
        mm = chunk.hitv[rel0:rel1].tolist()
        dd = chunk.depv[rel0:rel1].tolist()
        ll = chunk.loadv[rel0:rel1].tolist()
        ring = cs.ring
        rob = cs.rob
        interval = cs.interval
        lat = self.hit_lat
        count = cs.count
        last_dispatch = cs.last_dispatch
        last_retire = cs.last_retire
        last_llc = cs.last_llc
        for j in range(rel1 - rel0):
            dispatch = last_dispatch + interval
            if count >= rob:
                ready = ring[count % rob]
                if ready > dispatch:
                    dispatch = ready
            if mm[j]:
                issue = dispatch
                if dd[j] and last_llc > issue:
                    issue = last_llc
                complete = issue + lat
                if ll[j]:
                    last_llc = complete
            else:
                complete = dispatch + 1.0  # CoreTimingModel.ALU_LATENCY
            if complete > last_retire:
                last_retire = complete
            ring[count % rob] = last_retire
            count += 1
            last_dispatch = dispatch
        cs.count = count
        cs.last_dispatch = float(last_dispatch)
        cs.last_retire = float(last_retire)
        cs.last_llc = float(last_llc)

    def _time_vector(self, cs, chunk, rel0: int, rel1: int) -> None:
        """Anchored-retry batch kernel over a classified stretch."""
        ring = cs.ring
        rob = cs.rob
        interval = cs.interval
        lat = self.hit_lat
        n = rel1 - rel0
        a = 0
        consec_early = 0
        while a < n:
            rem = n - a
            if rem <= SCALAR_CUTOFF:
                self._time_scalar(cs, chunk, rel0 + a, rel1)
                return
            if consec_early >= 2:
                # ROB-bound drain: the ring binds nearly every record, so
                # vector attempts degenerate — run one window scalar.
                b = min(n, a + rob)
                self._time_scalar(cs, chunk, rel0 + a, rel0 + b)
                a = b
                consec_early = 0
                continue
            m = min(rem, ATTEMPT_MAX)
            A = cs.count  # absolute index of the attempt's first record
            r = rel0 + a
            # candidate dispatch chain (no ROB binding): sequential adds
            buf = cs.bufd[: m + 1]
            buf[0] = cs.last_dispatch
            buf[1:] = interval
            np.add.accumulate(buf, out=buf)
            dseg = buf[1:]
            # completes under the chain: dispatch + per-record latency
            comp = np.add(dseg, chunk.addlat[r : r + m], out=cs.bufc[:m])
            deppos = None
            lidx = None
            if chunk.any_dep:
                deppos = np.nonzero(chunk.depv[r : r + m])[0]
            if deppos is not None and deppos.size:
                # scalar fix-up over just the dependent positions: a
                # dependent access issues no earlier than the previous
                # load's completion, and the pull propagates in place
                lidx = np.nonzero(chunk.loadv[r : r + m])[0]
                nb = np.searchsorted(lidx, deppos)
                li = lidx.tolist()
                for p, o in zip(deppos.tolist(), nb.tolist()):
                    prev = comp[li[o - 1]] if o else cs.last_llc
                    if prev > dseg[p]:
                        comp[p] = prev + lat

            rbuf = cs.bufr[: m + 1]
            rbuf[0] = cs.last_retire
            rbuf[1:] = comp
            np.maximum.accumulate(rbuf, out=rbuf)
            retire = rbuf[1:]

            # constant-time readiness test (see module docstring): ring
            # values are monotone in write order, so the window max is
            # its last slot — one compare against the chain's minimum
            d0 = float(buf[1])
            if m < rob:
                clean = float(ring[(A + m - 1) % rob]) <= d0
            else:
                clean = (
                    self.rob_slack
                    and cs.last_retire <= d0
                    and (deppos is None or deppos.size == 0)
                )
            if clean:
                v = m
            else:
                # exact search: gather the window (at most two
                # contiguous ring segments), find the first violation
                ready = cs.bufg[:m]
                w = m if m < rob else rob
                s0 = A % rob
                k = rob - s0
                if w <= k:
                    ready[:w] = ring[s0 : s0 + w]
                else:
                    ready[:k] = ring[s0:]
                    ready[k:w] = ring[: w - k]
                if m > rob:
                    ready[rob:] = retire[: m - rob]
                viol = np.greater(ready, dseg, out=cs.bufb[:m])
                v = int(np.argmax(viol))
                if not viol[v]:
                    v = m

            if v:  # commit the exact prefix [0, v)
                w2 = v if v < rob else rob
                seg = retire[v - w2 : v]
                s0 = (A + v - w2) % rob
                k = rob - s0
                if w2 <= k:
                    ring[s0 : s0 + w2] = seg
                else:
                    ring[s0:] = seg[:k]
                    ring[: w2 - k] = seg[k:]
                cs.last_dispatch = float(dseg[v - 1])
                cs.last_retire = float(retire[v - 1])
                if lidx is None:
                    lidx = np.nonzero(chunk.loadv[r : r + m])[0]
                nl = int(np.searchsorted(lidx, v))
                if nl:
                    cs.last_llc = float(comp[lidx[nl - 1]])
                cs.count += v
            if v == m:
                consec_early = 0
                a += m
                continue
            # anchor the violating record on the exact ring value
            p = r + v
            self._scalar_one(
                cs,
                float(ready[v]),
                bool(chunk.hitv[p]),
                bool(chunk.depv[p]),
                bool(chunk.loadv[p]),
            )
            consec_early = consec_early + 1 if v < EARLY_VIOLATION else 0
            a += v + 1

    def _scalar_one(self, cs, dispatch, is_mem, is_dep, is_load) -> None:
        """Retire one record whose dispatch time is already exact."""
        if is_mem:
            issue = dispatch
            if is_dep and cs.last_llc > issue:
                issue = cs.last_llc
            complete = issue + self.hit_lat
            if is_load:
                cs.last_llc = float(complete)
        else:
            complete = dispatch + 1.0
        retire = cs.last_retire
        if complete > retire:
            retire = complete
        cs.ring[cs.count % cs.rob] = retire
        cs.count += 1
        cs.last_dispatch = dispatch
        cs.last_retire = float(retire)

    # -- barriers ---------------------------------------------------------
    def _execute_barrier(self, cs: _CoreState) -> None:
        """One batch-mode L1 miss against the shared miss path.

        The head and tail are :meth:`MemoryHierarchy.access` verbatim
        with the array L1 standing in for the ``Cache`` object; the
        shared middle is the inlined service in
        :mod:`repro.sim.vector.misspath`, consuming this chunk's
        precomputed miss plan where the record has an entry — so the
        LLC, DRAM, prefetchers, and the translator's PRNG see
        byte-identical call streams in byte-identical global order.
        """
        h = self.h
        chunk = cs.chunk
        index = cs.count
        rel = index - chunk.start
        kind = int(chunk.kind[rel])
        bits = int(cs.flags[index])
        is_write = bool(bits & 2)
        core_id = cs.core_id

        dispatch = self._next_dispatch(cs)
        issue = dispatch
        if bits & 4 and cs.last_llc > issue:
            issue = cs.last_llc
        now = issue

        pe = None
        if kind == CLS_MISS:
            block = int(chunk.block[rel])
            set_index = int(chunk.setidx[rel])
            vaddr = int(cs.addrs[index])
            vpage = frame = None
            mp = chunk.mp
            if mp is not None:
                # advance the plan cursor past members reclassified to
                # hits; consume this record's entry if it kept one
                cur = mp.cur
                pos = mp.pos
                n = mp.n
                while cur < n and pos[cur] < rel:
                    cur += 1
                if cur < n and pos[cur] == rel:
                    pe = cur
                    cur += 1
                mp.cur = cur
        else:  # CLS_UNKNOWN: first touch — the real translator allocates
            vaddr = int(cs.addrs[index])
            paddr0 = h.translator.translate(core_id, vaddr)
            block = paddr0 >> self.block_bits
            set_index = block & int(self.set_mask)
            vpage = vaddr >> self.page_bits
            frame = paddr0 >> self.page_bits
            mp = chunk.mp

        h._l1_accesses[core_id].value += 1
        h._l1_misses[core_id].value += 1
        latency, filled = self.misspath.service(
            cs, index, block, vaddr, now, is_write, mp, pe
        )
        if filled:
            self._fill(cs, block, set_index, index)

        complete = now + latency
        if not is_write:
            cs.last_llc = float(complete)
        self._retire_barrier(cs, index, dispatch, complete)
        cs.barriers += 1

        if cs.count < chunk.end:
            if frame is not None:
                reclassify_vpage(
                    chunk,
                    cs.count,
                    vpage,
                    frame,
                    cs.addrs,
                    cs.tags,
                    cs.valid,
                    self.page_bits,
                    self.block_bits,
                    self.set_mask,
                    self.ways,
                    self.hit_lat,
                )
            if filled:
                reclassify_set(
                    chunk,
                    cs.count,
                    set_index,
                    cs.tags,
                    cs.valid,
                    self.ways,
                    self.hit_lat,
                )

    def _fill(self, cs: _CoreState, block: int, set_index: int, index: int):
        """Array-L1 fill: LRU victim by stamp, mirroring ``Cache.fill``."""
        l1 = self.h.l1ds[cs.core_id]
        ways = self.ways
        filled = cs.valid_count[set_index]
        base = set_index * ways
        if filled == ways:
            if cs.drain:
                sl = cs.stamp_list
                way = 0
                best = sl[base]
                for w in range(1, ways):
                    v = sl[base + w]
                    if v < best:
                        best = v
                        way = w
            else:
                way = int(np.argmin(cs.stamp[base : base + ways]))
            del cs.resident[int(cs.tags[set_index, way])]
            l1._evictions.value += 1
        else:
            # valid bits never clear, so ways fill strictly in index
            # order and the first free way is the current fill count
            way = filled
            cs.valid_count[set_index] = filled + 1
            cs.valid[set_index, way] = True
        cs.tags[set_index, way] = block
        if cs.drain:
            cs.stamp_list[base + way] = index
        else:
            cs.stamp[base + way] = index
        cs.resident[block] = base + way
        l1._fills.value += 1

    # -- state writeback --------------------------------------------------
    def _writeback(self) -> None:
        """Mirror replay state back into the real objects.

        Runs at the end of every :meth:`advance` (even on error), before
        any snapshot can observe the cores: identical post-state to the
        scalar loops.
        """
        h = self.h
        for cs, core in zip(self.cores, self.engine.cores):
            core._count = cs.count
            core._last_dispatch = float(cs.last_dispatch)
            core._last_retire = float(cs.last_retire)
            core._last_load_complete = float(cs.last_llc)
            ring = cs.ring_list if cs.drain else cs.ring.tolist()
            core._retire_ring[:] = ring
            core._stat_instructions.value = cs.count
            core._stat_cycles.value = float(cs.last_retire)
            if cs.pend_hits:
                h._l1_accesses[cs.core_id].value += cs.pend_hits
                h._l1_hits[cs.core_id].value += cs.pend_hits
                cs.pend_hits = 0
