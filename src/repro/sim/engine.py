"""The trace-driven multi-core simulation loop.

The engine advances the core with the smallest local clock (a 4-entry
heap), pulling the next instruction from that core's workload stream and
routing memory operations through the shared hierarchy — so cross-core
interleaving at the LLC and DRAM follows simulated time, not round-robin
instruction count.

Runs have a warm-up window (caches, history tables, and translation fill
up) followed by a measurement window; all reported counters are deltas
over the measurement window, mirroring the paper's SimFlex methodology
(40 K warm-up / 160 K measured per checkpoint — our defaults scale the
same 20/80 split).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.cpu.core import CoreTimingModel
from repro.memsys.hierarchy import MemoryHierarchy
from repro.obs.config import ObservabilityConfig
from repro.obs.sinks import NULL_SINK, TraceSink, build_sink
from repro.obs.timeline import TimelineRecorder
from repro.prefetchers.base import Prefetcher
from repro.prefetchers.registry import make_prefetcher
from repro.sim.results import CoreResult, SimResult


@dataclass(frozen=True)
class SimulationParams:
    """How long to run: per-core instruction budgets."""

    instructions_per_core: int = 100_000
    warmup_instructions: int = 20_000

    def __post_init__(self) -> None:
        if self.instructions_per_core <= 0:
            raise ValueError("instructions_per_core must be positive")
        if not 0 <= self.warmup_instructions < self.instructions_per_core:
            raise ValueError(
                "warmup_instructions must be in [0, instructions_per_core)"
            )


class SimulationEngine:
    """One workload × one prefetcher configuration × one system."""

    def __init__(
        self,
        workload,
        prefetcher: str = "none",
        system: Optional[SystemConfig] = None,
        params: Optional[SimulationParams] = None,
        prefetcher_kwargs: Optional[dict] = None,
        prefetchers: Optional[Sequence[Prefetcher]] = None,
        train_at: str = "llc",
        obs: Optional[ObservabilityConfig] = None,
        sink: Optional[TraceSink] = None,
    ) -> None:
        """``obs`` selects what the run records (trace file, timeline);
        ``sink`` overrides the trace destination with a ready-made
        :class:`~repro.obs.sinks.TraceSink` (ring buffers, recorders).
        A sink built *here* from ``obs.trace_path`` is owned by the
        engine and closed when :meth:`run` returns."""
        self.workload = workload
        self.system = system if system is not None else SystemConfig()
        self.params = params if params is not None else SimulationParams()
        self.prefetcher_name = prefetcher
        self.obs = obs if obs is not None else ObservabilityConfig()
        self._owns_sink = False
        if sink is None:
            sink = build_sink(self.obs)
            self._owns_sink = sink is not None
        self.sink = sink if sink is not None else NULL_SINK

        if workload.num_cores != self.system.num_cores:
            raise ValueError(
                f"workload {workload.name!r} defines {workload.num_cores} core "
                f"streams but the system has {self.system.num_cores} cores"
            )

        if prefetchers is not None:
            if len(prefetchers) != self.system.num_cores:
                raise ValueError("one prefetcher instance per core is required")
            self.prefetchers = list(prefetchers)
        elif prefetcher == "none":
            self.prefetchers = []
        else:
            kwargs = prefetcher_kwargs or {}
            self.prefetchers = [
                make_prefetcher(prefetcher, self.system.address_map, **kwargs)
                for _ in range(self.system.num_cores)
            ]

        self.stats = StatGroup("run")
        self.hierarchy = MemoryHierarchy(
            self.system,
            self.prefetchers,
            stats=self.stats.child("memsys"),
            train_at=train_at,
            sink=self.sink,
        )
        self.cores = [
            CoreTimingModel(self.system.core, stats=self.stats.child(f"core{i}"))
            for i in range(self.system.num_cores)
        ]

        # Interval timeline: sample the LLC/DRAM counters and per-core
        # progress every N retired instructions (across all cores).
        memsys = self.stats.child("memsys")
        self.timeline: Optional[TimelineRecorder] = (
            TimelineRecorder(
                self.obs.timeline_interval,
                llc_stats=memsys.child("llc"),
                dram_stats=memsys.child("dram"),
            )
            if self.obs.timeline_interval
            else None
        )
        self._retired_total = 0
        self._next_sample = self.obs.timeline_interval

    # -- phases -----------------------------------------------------------
    def _run_until(self, streams, budget_per_core: int) -> None:
        """Advance every core to ``budget_per_core`` retired instructions.

        Cores are interleaved by their *dispatch* clock, not their retire
        clock: memory requests carry dispatch-time timestamps into the
        shared DRAM model, so processing cores in dispatch order keeps
        those timestamps (nearly) monotonic and the channel-queue
        accounting honest.  Ordering by retire time would let a core that
        just absorbed a long miss stamp its next, independent request far
        in the past relative to other cores' traffic.
        """
        heap = [
            (core.next_issue_time(), core_id)
            for core_id, core in enumerate(self.cores)
            if core.instructions < budget_per_core
        ]
        heapq.heapify(heap)
        recorder = self.timeline  # None when the timeline is disabled
        while heap:
            _, core_id = heapq.heappop(heap)
            core = self.cores[core_id]
            record = next(streams[core_id])
            if record.is_mem:
                issue = core.load_issue_time(record.depends_on_prev_load)
                result = self.hierarchy.access(
                    core_id, record.pc, record.address, issue, record.is_write
                )
                core.retire_memory(
                    issue, result.latency, is_load=not record.is_write
                )
            else:
                core.retire_compute()
            if recorder is not None:
                self._retired_total += 1
                if self._retired_total >= self._next_sample:
                    recorder.sample(self._retired_total, self.cores)
                    self._next_sample += recorder.interval
            if core.instructions < budget_per_core:
                heapq.heappush(heap, (core.next_issue_time(), core_id))

    # -- the full run -----------------------------------------------------------
    def run(self) -> SimResult:
        params = self.params
        streams = {
            core_id: self.workload.core_stream(core_id)
            for core_id in range(self.system.num_cores)
        }

        try:
            if params.warmup_instructions:
                self._run_until(streams, params.warmup_instructions)
            snapshot = self.stats.snapshot()
            core_marks = [(core.instructions, core.time) for core in self.cores]

            self._run_until(streams, params.instructions_per_core)
            self.hierarchy.finalize()
            final = self.stats.snapshot()

            recorder = self.timeline
            if recorder is not None:
                # Close the last (possibly partial) interval so the
                # timeline's deltas sum to the whole-run totals.
                if self._retired_total > recorder.last_instructions():
                    recorder.sample(self._retired_total, self.cores)
                timeline = list(recorder.samples)
            else:
                timeline = []

            result = self._build_result(snapshot, final, core_marks)
            result.timeline = timeline
            return result
        finally:
            if self._owns_sink:
                self.sink.close()

    # -- result assembly -----------------------------------------------------------
    def _delta(self, snapshot: Dict[str, float], final: Dict[str, float],
               key: str) -> int:
        return int(final.get(key, 0) - snapshot.get(key, 0))

    def _build_result(
        self,
        snapshot: Dict[str, float],
        final: Dict[str, float],
        core_marks: List[tuple],
    ) -> SimResult:
        cores = []
        for core, (warm_instr, warm_time) in zip(self.cores, core_marks):
            cores.append(
                CoreResult(
                    instructions=core.instructions - warm_instr,
                    cycles=core.time - warm_time,
                )
            )
        llc = "run.memsys.llc."
        dram = "run.memsys.dram."
        # Every core carries an identical copy of the prefetcher metadata,
        # and Fig. 9 charges the *per-core* budget, so read the first
        # instance; the "none" baseline has no prefetchers and costs 0.
        storage = self.prefetchers[0].storage_bits if self.prefetchers else 0
        pf_prefix = "run.memsys.prefetcher."
        pf_counters = {
            key[key.rindex(".") + 1 :]: final[key] - snapshot.get(key, 0)
            for key in final
            if key.startswith(pf_prefix)
        }
        return SimResult(
            workload=self.workload.name,
            prefetcher=self.prefetcher_name,
            cores=cores,
            demand_accesses=self._delta(snapshot, final, llc + "demand_accesses"),
            demand_hits=self._delta(snapshot, final, llc + "demand_hits"),
            demand_misses=self._delta(snapshot, final, llc + "demand_misses"),
            covered=self._delta(snapshot, final, llc + "covered"),
            late_covered=self._delta(snapshot, final, llc + "late_covered"),
            prefetches_issued=self._delta(
                snapshot, final, llc + "prefetches_issued"
            ),
            redundant_prefetches=self._delta(
                snapshot, final, llc + "redundant_prefetches"
            ),
            overpredictions=self._delta(snapshot, final, llc + "overpredictions"),
            prefetch_unused_at_end=int(
                final.get(llc + "prefetch_unused_at_end", 0)
            ),
            dram_reads=self._delta(snapshot, final, dram + "reads"),
            dram_row_hits=self._delta(snapshot, final, dram + "row_hits"),
            prefetcher_storage_bits=storage,
            prefetcher_counters=pf_counters,
            raw_stats=self.stats.as_dict(),
        )
