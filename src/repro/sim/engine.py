"""The trace-driven multi-core simulation loop.

The engine advances the core with the smallest local clock (a 4-entry
heap), pulling the next instruction from that core's workload stream and
routing memory operations through the shared hierarchy — so cross-core
interleaving at the LLC and DRAM follows simulated time, not round-robin
instruction count.

Runs have a warm-up window (caches, history tables, and translation fill
up) followed by a measurement window; all reported counters are deltas
over the measurement window, mirroring the paper's SimFlex methodology
(40 K warm-up / 160 K measured per checkpoint — our defaults scale the
same 20/80 split).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.cpu.core import CoreTimingModel
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.replacement import TraceOracle, available_replacements
from repro.obs.config import ObservabilityConfig
from repro.obs.sinks import NULL_SINK, TraceSink, build_sink
from repro.obs.timeline import TimelineRecorder
from repro.prefetchers.base import Prefetcher
from repro.prefetchers.registry import make_prefetcher
from repro.sim.compile.workload import CompiledWorkload
from repro.sim.results import CoreResult, SimResult

#: Version of the specialised compiled-trace inner loop.  Bump on any
#: change to ``_run_until_compiled`` (or the state it mirrors from
#: ``CoreTimingModel``): the executor folds it into result-cache digests
#: so entries produced by an older fast path are never served.
FASTPATH_VERSION = 1

#: Version of the vectorized batch-replay tier (``repro.sim.vector``).
#: Bump on any change to its kernels or barrier handling; the executor
#: folds it into result-cache digests alongside ``FASTPATH_VERSION``.
#: Defined here (not in the vector package) so digests can be computed
#: on numpy-free installs, where the tier merely never engages.
#: v2: batched miss path (misspath.py) + drain mode + per-reason demotion.
VECTOR_VERSION = 2

#: Process-local counts of which engine tier each ``run()`` selected.
#: ``demoted`` counts vectorized runs that handed off to the compiled
#: loop mid-run, and the ``demoted_*`` keys break that total down by
#: reason (see ``VectorReplay._should_demote``): ``stretch_probe`` — the
#: density probe tripped (only when ``DEMOTE_STRETCH`` is raised above
#: its 0 default); ``ineligible_policy`` — an LLC replacement-policy
#: interface or Belady oracle keeps the miss path in fallback mode on a
#: miss-dense trace; ``hazard`` — the batched-verdict hazard-rate valve.
#: Diagnostics only — deliberately *not* routed into ``SimResult`` or
#: ``raw_stats``, which must stay byte-identical across tiers.
_TIER_RUNS = {
    "vectorized": 0,
    "compiled": 0,
    "general": 0,
    "demoted": 0,
    "demoted_stretch_probe": 0,
    "demoted_hazard": 0,
    "demoted_ineligible_policy": 0,
}


def engine_tier_counters() -> Dict[str, int]:
    """Snapshot of per-tier run counts (this process only)."""
    return dict(_TIER_RUNS)


@dataclass(frozen=True)
class SimulationParams:
    """How long to run: per-core instruction budgets."""

    instructions_per_core: int = 100_000
    warmup_instructions: int = 20_000

    def __post_init__(self) -> None:
        if self.instructions_per_core <= 0:
            raise ValueError("instructions_per_core must be positive")
        if not 0 <= self.warmup_instructions < self.instructions_per_core:
            raise ValueError(
                "warmup_instructions must be in [0, instructions_per_core)"
            )


class SimulationEngine:
    """One workload × one prefetcher configuration × one system."""

    def __init__(
        self,
        workload,
        prefetcher: str = "none",
        system: Optional[SystemConfig] = None,
        params: Optional[SimulationParams] = None,
        prefetcher_kwargs: Optional[dict] = None,
        prefetchers: Optional[Sequence[Prefetcher]] = None,
        train_at: str = "llc",
        obs: Optional[ObservabilityConfig] = None,
        sink: Optional[TraceSink] = None,
        vectorized: bool = True,
        replacement: str = "lru",
    ) -> None:
        """``obs`` selects what the run records (trace file, timeline);
        ``sink`` overrides the trace destination with a ready-made
        :class:`~repro.obs.sinks.TraceSink` (ring buffers, recorders).
        A sink built *here* from ``obs.trace_path`` is owned by the
        engine and closed when :meth:`run` returns.  ``vectorized``
        permits the NumPy batch-replay tier when the run qualifies
        (see :meth:`_vector_path_eligible`); results are identical
        either way.  ``replacement`` selects the LLC policy from
        :mod:`repro.memsys.replacement`; ``"opt"`` needs next-use
        knowledge and therefore a compiled workload to pre-scan."""
        self.workload = workload
        self.vectorized = vectorized
        if replacement not in available_replacements():
            raise ValueError(
                f"unknown replacement policy {replacement!r}; "
                f"available: {available_replacements()}"
            )
        self.replacement = replacement
        #: fixed chunk size for the vectorized tier (tests); None = adaptive
        self._vector_chunk: Optional[int] = None
        self.system = system if system is not None else SystemConfig()
        self.params = params if params is not None else SimulationParams()
        self.prefetcher_name = prefetcher
        self.obs = obs if obs is not None else ObservabilityConfig()
        self._owns_sink = False
        if sink is None:
            sink = build_sink(self.obs)
            self._owns_sink = sink is not None
        self.sink = sink if sink is not None else NULL_SINK

        if workload.num_cores != self.system.num_cores:
            raise ValueError(
                f"workload {workload.name!r} defines {workload.num_cores} core "
                f"streams but the system has {self.system.num_cores} cores"
            )

        if prefetchers is not None:
            if len(prefetchers) != self.system.num_cores:
                raise ValueError("one prefetcher instance per core is required")
            self.prefetchers = list(prefetchers)
        elif prefetcher == "none":
            self.prefetchers = []
        else:
            kwargs = prefetcher_kwargs or {}
            self.prefetchers = [
                make_prefetcher(prefetcher, self.system.address_map, **kwargs)
                for _ in range(self.system.num_cores)
            ]

        oracle = None
        if replacement == "opt":
            if not isinstance(workload, CompiledWorkload):
                raise ValueError(
                    "replacement='opt' needs the packed trace arenas to "
                    "pre-scan next-use distances; run with a compiled "
                    "workload (compile=True / --compiled)"
                )
            oracle = TraceOracle(workload, self.system)

        self.stats = StatGroup("run")
        self.hierarchy = MemoryHierarchy(
            self.system,
            self.prefetchers,
            stats=self.stats.child("memsys"),
            train_at=train_at,
            sink=self.sink,
            replacement=replacement,
            replacement_oracle=oracle,
        )
        self.cores = [
            CoreTimingModel(self.system.core, stats=self.stats.child(f"core{i}"))
            for i in range(self.system.num_cores)
        ]

        # Interval timeline: sample the LLC/DRAM counters and per-core
        # progress every N retired instructions (across all cores).
        memsys = self.stats.child("memsys")
        self.timeline: Optional[TimelineRecorder] = (
            TimelineRecorder(
                self.obs.timeline_interval,
                llc_stats=memsys.child("llc"),
                dram_stats=memsys.child("dram"),
            )
            if self.obs.timeline_interval
            else None
        )
        self._retired_total = 0
        self._next_sample = self.obs.timeline_interval

    # -- phases -----------------------------------------------------------
    def _run_until(self, streams, budget_per_core: int) -> None:
        """Advance every core to ``budget_per_core`` retired instructions.

        Cores are interleaved by their *dispatch* clock, not their retire
        clock: memory requests carry dispatch-time timestamps into the
        shared DRAM model, so processing cores in dispatch order keeps
        those timestamps (nearly) monotonic and the channel-queue
        accounting honest.  Ordering by retire time would let a core that
        just absorbed a long miss stamp its next, independent request far
        in the past relative to other cores' traffic.
        """
        heap = [
            (core.next_issue_time(), core_id)
            for core_id, core in enumerate(self.cores)
            if core.instructions < budget_per_core
        ]
        heapq.heapify(heap)
        recorder = self.timeline  # None when the timeline is disabled
        while heap:
            _, core_id = heapq.heappop(heap)
            core = self.cores[core_id]
            record = next(streams[core_id])
            if record.is_mem:
                issue = core.load_issue_time(record.depends_on_prev_load)
                result = self.hierarchy.access(
                    core_id, record.pc, record.address, issue, record.is_write
                )
                core.retire_memory(
                    issue, result.latency, is_load=not record.is_write
                )
            else:
                core.retire_compute()
            if recorder is not None:
                self._retired_total += 1
                if self._retired_total >= self._next_sample:
                    recorder.sample(self._retired_total, self.cores)
                    self._next_sample += recorder.interval
            if core.instructions < budget_per_core:
                heapq.heappush(heap, (core.next_issue_time(), core_id))

    def _fast_path_eligible(self) -> bool:
        """True when the specialised compiled-trace loop may replace
        :meth:`_run_until`.

        The fast path skips per-record sink guards and timeline
        bookkeeping, so it only engages when both are provably inert:
        the sink is the module-level ``NULL_SINK`` and the timeline
        recorder is off.  Anything else — or a trace compiled shorter
        than the run — falls back to the general loop, byte-for-byte.
        """
        return (
            isinstance(self.workload, CompiledWorkload)
            and self.sink is NULL_SINK
            and self.timeline is None
            and self.workload.records_per_core
            >= self.params.instructions_per_core
        )

    def _vector_path_eligible(self) -> bool:
        """True when the NumPy batch-replay tier may run this simulation.

        Requires everything :meth:`_fast_path_eligible` does, plus:

        * prefetchers (if any) observe the **LLC** — the vector tier
          batches L1 hits, so an L1-training prefetcher would miss its
          input stream.  ``train_at="l1"`` stays eligible only for the
          no-prefetcher baseline, where the L1 eviction hook is inert;
        * numpy imports (``repro.sim.vector`` is the capability probe).
        """
        if not (self.vectorized and self._fast_path_eligible()):
            return False
        if self.prefetchers and self.hierarchy.train_at != "llc":
            return False
        try:
            import repro.sim.vector  # noqa: F401
        except ImportError:
            return False
        return True

    def _run_until_compiled(self, arenas, cursors, budget_per_core: int) -> None:
        """:meth:`_run_until`, specialised for packed compiled traces.

        Replays the packed pc/address/flag words directly — no
        ``TraceRecord`` allocation, no generator frames — and inlines
        :class:`~repro.cpu.core.CoreTimingModel`'s dispatch/retire
        arithmetic over local mirrors of its state (written back on
        exit, before any snapshot can observe them).  Every float is
        produced by the same operations in the same order as the
        general loop, so results are bit-identical; the equivalence
        suite (``tests/sim/test_compile.py``) holds this to
        field-for-field ``SimResult`` equality.
        """
        cores = self.cores
        access = self.hierarchy.access
        heappush = heapq.heappush
        heappop = heapq.heappop
        # local mirrors of per-core CoreTimingModel state
        counts = [core._count for core in cores]
        last_dispatch = [core._last_dispatch for core in cores]
        last_retire = [core._last_retire for core in cores]
        last_load_complete = [core._last_load_complete for core in cores]
        rings = [core._retire_ring for core in cores]
        robs = [core._rob for core in cores]
        intervals = [core._dispatch_interval for core in cores]
        pcs = [arena.pcs for arena in arenas]
        addresses = [arena.addresses for arena in arenas]
        flags = [arena.flags for arena in arenas]

        heap = []
        for core_id in range(len(cores)):
            count = counts[core_id]
            if count < budget_per_core:
                dispatch = last_dispatch[core_id] + intervals[core_id]
                if count >= robs[core_id]:
                    ready = rings[core_id][count % robs[core_id]]
                    if ready > dispatch:
                        dispatch = ready
                heap.append((dispatch, core_id))
        heapq.heapify(heap)

        try:
            while heap:
                _, core_id = heappop(heap)
                index = cursors[core_id]
                cursors[core_id] = index + 1
                count = counts[core_id]
                ring = rings[core_id]
                rob = robs[core_id]
                # next_issue_time()
                dispatch = last_dispatch[core_id] + intervals[core_id]
                if count >= rob:
                    ready = ring[count % rob]
                    if ready > dispatch:
                        dispatch = ready
                bits = flags[core_id][index]
                if bits:  # memory instruction
                    issue = dispatch
                    if bits & 4:  # depends_on_prev_load
                        arrived = last_load_complete[core_id]
                        if arrived > issue:
                            issue = arrived
                    result = access(
                        core_id,
                        pcs[core_id][index],
                        addresses[core_id][index],
                        issue,
                        bool(bits & 2),  # is_write
                    )
                    complete = issue + result.latency
                    if not bits & 2:
                        last_load_complete[core_id] = complete
                else:
                    complete = dispatch + 1.0  # CoreTimingModel.ALU_LATENCY
                retire = last_retire[core_id]
                if complete > retire:
                    retire = complete
                ring[count % rob] = retire
                count += 1
                counts[core_id] = count
                last_dispatch[core_id] = dispatch
                last_retire[core_id] = retire
                if count < budget_per_core:
                    dispatch = dispatch + intervals[core_id]
                    if count >= rob:
                        ready = ring[count % rob]
                        if ready > dispatch:
                            dispatch = ready
                    heappush(heap, (dispatch, core_id))
        finally:
            # write the mirrors back so snapshots/results see the same
            # state the general loop would have left (even on error)
            for core_id, core in enumerate(cores):
                core._count = counts[core_id]
                core._last_dispatch = last_dispatch[core_id]
                core._last_retire = last_retire[core_id]
                core._last_load_complete = last_load_complete[core_id]
                core._stat_instructions.value = counts[core_id]
                core._stat_cycles.value = last_retire[core_id]

    # -- the full run -----------------------------------------------------------
    def run(self) -> SimResult:
        # A sink built here from ``obs.trace_path`` is entered as a
        # context manager: however the run ends — normally, by exception,
        # or by KeyboardInterrupt — the trace file is flushed and closed,
        # never left truncated at the OS buffer boundary.
        if self._owns_sink:
            with self.sink:
                return self._run()
        return self._run()

    def _run(self) -> SimResult:
        params = self.params
        if self._vector_path_eligible():
            from repro.sim.vector import VectorReplay

            replay = VectorReplay(self, chunk_records=self._vector_chunk)
            advance = replay.advance
            _TIER_RUNS["vectorized"] += 1
        elif self._fast_path_eligible():
            _TIER_RUNS["compiled"] += 1
            arenas = [
                self.workload.packed(core_id)
                for core_id in range(self.system.num_cores)
            ]
            cursors = [0] * self.system.num_cores

            def advance(budget: int) -> None:
                self._run_until_compiled(arenas, cursors, budget)

        else:
            _TIER_RUNS["general"] += 1
            streams = {
                core_id: self.workload.core_stream(core_id)
                for core_id in range(self.system.num_cores)
            }

            def advance(budget: int) -> None:
                self._run_until(streams, budget)

        if params.warmup_instructions:
            advance(params.warmup_instructions)
        snapshot = self.stats.snapshot()
        core_marks = [(core.instructions, core.time) for core in self.cores]

        advance(params.instructions_per_core)
        self.hierarchy.finalize()
        final = self.stats.snapshot()

        recorder = self.timeline
        if recorder is not None:
            # Close the last (possibly partial) interval so the
            # timeline's deltas sum to the whole-run totals.
            if self._retired_total > recorder.last_instructions():
                recorder.sample(self._retired_total, self.cores)
            timeline = list(recorder.samples)
        else:
            timeline = []

        result = self._build_result(snapshot, final, core_marks)
        result.timeline = timeline
        return result

    # -- result assembly -----------------------------------------------------------
    def _delta(self, snapshot: Dict[str, float], final: Dict[str, float],
               key: str) -> int:
        return int(final.get(key, 0) - snapshot.get(key, 0))

    def _build_result(
        self,
        snapshot: Dict[str, float],
        final: Dict[str, float],
        core_marks: List[tuple],
    ) -> SimResult:
        cores = []
        for core, (warm_instr, warm_time) in zip(self.cores, core_marks):
            cores.append(
                CoreResult(
                    instructions=core.instructions - warm_instr,
                    cycles=core.time - warm_time,
                )
            )
        llc = "run.memsys.llc."
        dram = "run.memsys.dram."
        # Every core carries an identical copy of the prefetcher metadata,
        # and Fig. 9 charges the *per-core* budget, so read the first
        # instance; the "none" baseline has no prefetchers and costs 0.
        storage = self.prefetchers[0].storage_bits if self.prefetchers else 0
        pf_prefix = "run.memsys.prefetcher."
        pf_counters = {
            key[key.rindex(".") + 1 :]: final[key] - snapshot.get(key, 0)
            for key in final
            if key.startswith(pf_prefix)
        }
        return SimResult(
            workload=self.workload.name,
            prefetcher=self.prefetcher_name,
            cores=cores,
            demand_accesses=self._delta(snapshot, final, llc + "demand_accesses"),
            demand_hits=self._delta(snapshot, final, llc + "demand_hits"),
            demand_misses=self._delta(snapshot, final, llc + "demand_misses"),
            covered=self._delta(snapshot, final, llc + "covered"),
            late_covered=self._delta(snapshot, final, llc + "late_covered"),
            prefetches_issued=self._delta(
                snapshot, final, llc + "prefetches_issued"
            ),
            redundant_prefetches=self._delta(
                snapshot, final, llc + "redundant_prefetches"
            ),
            overpredictions=self._delta(snapshot, final, llc + "overpredictions"),
            prefetch_unused_at_end=int(
                final.get(llc + "prefetch_unused_at_end", 0)
            ),
            dram_reads=self._delta(snapshot, final, dram + "reads"),
            dram_row_hits=self._delta(snapshot, final, dram + "row_hits"),
            prefetcher_storage_bits=storage,
            prefetcher_counters=pf_counters,
            raw_stats=self.stats.as_dict(),
        )
