"""Golden-trace recording: the fixture format of the regression suite.

A *golden trace* freezes a small deterministic run's observable
behaviour — its first N events plus its final stat tree — so future
refactors of the engine, the hierarchy, or a prefetcher are diffed
against today's behaviour event by event, not just by end-of-run
totals.

Both the regeneration tool (``tools/update_golden.py``) and the
regression test (``tests/integration/test_golden_traces.py``) call
:func:`record_golden` so the fixture and the check can never disagree
about the run configuration.  Imported explicitly (not via
``repro.obs``) because it pulls in the engine.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.common.config import small_system
from repro.obs.sinks import RecordingSink
from repro.sim.engine import SimulationEngine, SimulationParams
from repro.workloads.registry import make_workload

#: the prefetchers pinned by the golden suite (Bingo + the paper's
#: closest competitors with distinct mechanisms: spatial, offset, delta)
GOLDEN_PREFETCHERS = ("bingo", "sms", "bop", "spp")

#: fixture schema version — bump when the *format* (not the simulated
#: behaviour) of the fixture files changes
GOLDEN_SCHEMA = 1

#: events kept per fixture (the first N of the run)
GOLDEN_EVENT_LIMIT = 500


def golden_spec(prefetcher: str) -> Dict[str, object]:
    """The one pinned run per prefetcher: small, fast, event-diverse.

    em3d's pointer-chasing over a scaled-down system produces demand
    hits and misses, real prefetch issue/fill activity, evictions, and
    (for Bingo) both long- and short-event vote decisions within a few
    thousand instructions.
    """
    return {
        "workload": "em3d",
        "prefetcher": prefetcher,
        "num_cores": 4,
        "instructions_per_core": 8000,
        "warmup_instructions": 1000,
        "seed": 11,
        "scale": 0.02,
    }


def record_golden(prefetcher: str) -> Dict[str, object]:
    """Run the pinned configuration; return the JSON-ready fixture.

    The fixture holds the spec (so a reader can reproduce it), the
    first :data:`GOLDEN_EVENT_LIMIT` events in emission order, and the
    complete final stat tree.
    """
    spec = golden_spec(prefetcher)
    sink = RecordingSink(limit=GOLDEN_EVENT_LIMIT)
    engine = SimulationEngine(
        workload=make_workload(
            str(spec["workload"]), seed=spec["seed"], scale=spec["scale"]
        ),
        prefetcher=prefetcher,
        system=small_system(num_cores=int(spec["num_cores"])),
        params=SimulationParams(
            instructions_per_core=int(spec["instructions_per_core"]),
            warmup_instructions=int(spec["warmup_instructions"]),
        ),
        sink=sink,
    )
    result = engine.run()
    return {
        "schema": GOLDEN_SCHEMA,
        "spec": spec,
        "events": [event.to_dict() for event in sink.events],
        "stats": result.raw_stats,
    }


def golden_path(root: Union[str, Path], prefetcher: str) -> Path:
    return Path(root) / f"{prefetcher}.json"


def write_golden(root: Union[str, Path], prefetcher: str) -> Path:
    """Record and write one fixture; returns its path."""
    path = golden_path(root, prefetcher)
    path.parent.mkdir(parents=True, exist_ok=True)
    fixture = record_golden(prefetcher)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(fixture, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_golden(root: Union[str, Path], prefetcher: str) -> Dict[str, object]:
    with open(golden_path(root, prefetcher), "r", encoding="utf-8") as fh:
        return json.load(fh)
