"""The picklable bundle of observability knobs.

One frozen value describes everything a run should record, so it can be
carried inside a :class:`repro.sim.executor.SimJob` across process
boundaries and folded into the job's cache digest.  A default-constructed
config means "observe nothing" and adds no cost to the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ObservabilityConfig:
    """What a run records.

    * ``trace_path`` — write a JSONL event trace here (``None`` = off).
      Tracing is a *side effect*: results of tracing jobs are never
      served from (or stored in) the executor's on-disk cache, because a
      cached result cannot regenerate the trace file.
    * ``trace_limit`` — stop tracing after this many events (0 = all).
    * ``timeline_interval`` — sample the stat tree every N retired
      instructions (0 = off).  Timeline samples live *inside* the
      :class:`~repro.sim.results.SimResult`, so timeline jobs cache
      normally; the interval is part of the digest.
    """

    trace_path: Optional[str] = None
    trace_limit: int = 0
    timeline_interval: int = 0

    def __post_init__(self) -> None:
        if self.trace_limit < 0:
            raise ValueError(f"trace_limit must be >= 0, got {self.trace_limit}")
        if self.timeline_interval < 0:
            raise ValueError(
                f"timeline_interval must be >= 0, got {self.timeline_interval}"
            )

    @property
    def enabled(self) -> bool:
        """True when this config records anything at all."""
        return bool(self.trace_path) or self.timeline_interval > 0

    @property
    def has_side_effects(self) -> bool:
        """True when a run under this config writes outside its result.

        The executor must not answer such a job from the cache: the
        caller asked for an artifact (the trace file) that only a real
        run produces.
        """
        return bool(self.trace_path)
