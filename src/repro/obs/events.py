"""Typed trace-event records.

Each event is a ``__slots__`` class (they are allocated on the
simulator's hot path whenever a sink is enabled) with a string ``kind``
discriminator and a flat, JSON-encodable ``to_dict``.  The dict form is
the interchange format: JSONL traces, golden fixtures, and the replay
helpers all operate on it, and :func:`event_from_dict` reverses it.

Events carry *simulated* quantities only — block numbers, core ids,
cycle timestamps — never wall-clock or process state, so a trace is as
deterministic as the run that produced it.
"""

from __future__ import annotations

from typing import Dict, Type


class TraceEvent:
    """Base class: ``kind`` discriminator + dict (de)serialisation."""

    __slots__ = ()

    #: discriminator stored in the ``kind`` field of the dict form
    kind: str = "event"

    def to_dict(self) -> dict:
        out = {"kind": self.kind}
        for name in self.__slots__:
            out[name] = getattr(self, name)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        payload = {k: v for k, v in data.items() if k != "kind"}
        return cls(**payload)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:  # events are value objects
        return hash(tuple(sorted(self.to_dict().items())))

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.__slots__
        )
        return f"{type(self).__name__}({fields})"


class DemandHit(TraceEvent):
    """A demand access found its block in the LLC.

    ``covered`` marks the first demand use of a prefetched block (the
    paper's *covered miss*); ``late`` additionally marks that the
    prefetch's fill had not yet completed, so part of the latency was
    still exposed.
    """

    __slots__ = ("time", "core_id", "pc", "block", "covered", "late")
    kind = "demand_hit"

    def __init__(
        self,
        time: float,
        core_id: int,
        pc: int,
        block: int,
        covered: bool = False,
        late: bool = False,
    ) -> None:
        self.time = time
        self.core_id = core_id
        self.pc = pc
        self.block = block
        self.covered = covered
        self.late = late


class DemandMiss(TraceEvent):
    """A demand access missed the LLC and went to DRAM."""

    __slots__ = ("time", "core_id", "pc", "block")
    kind = "demand_miss"

    def __init__(self, time: float, core_id: int, pc: int, block: int) -> None:
        self.time = time
        self.core_id = core_id
        self.pc = pc
        self.block = block


class PrefetchIssued(TraceEvent):
    """The hierarchy accepted a prefetch candidate and sent it to DRAM.

    ``address`` is the block's byte address (always block-aligned);
    ``trigger_block`` is the demand access that produced the candidate.
    """

    __slots__ = ("time", "core_id", "address", "block", "trigger_block",
                 "ready_time")
    kind = "prefetch_issued"

    def __init__(
        self,
        time: float,
        core_id: int,
        address: int,
        block: int,
        trigger_block: int,
        ready_time: float,
    ) -> None:
        self.time = time
        self.core_id = core_id
        self.address = address
        self.block = block
        self.trigger_block = trigger_block
        self.ready_time = ready_time


class PrefetchFill(TraceEvent):
    """An issued prefetch's fill completed (at ``ready_time``).

    The latency-based hierarchy materialises fills at issue, so this is
    emitted immediately after its :class:`PrefetchIssued` — the pair
    exists so replay and conformance checks can assert fills are only
    ever recorded for issued prefetches.
    """

    __slots__ = ("time", "core_id", "block", "ready_time")
    kind = "prefetch_fill"

    def __init__(
        self, time: float, core_id: int, block: int, ready_time: float
    ) -> None:
        self.time = time
        self.core_id = core_id
        self.block = block
        self.ready_time = ready_time


class Eviction(TraceEvent):
    """A block left a cache (capacity eviction or invalidation).

    ``prefetched and not used`` identifies an overprediction; ``cache``
    names the emitting cache (the hierarchy wires the LLC only).
    """

    __slots__ = ("cache", "block", "prefetched", "used")
    kind = "eviction"

    def __init__(
        self, cache: str, block: int, prefetched: bool, used: bool
    ) -> None:
        self.cache = cache
        self.block = block
        self.prefetched = prefetched
        self.used = used


class VoteDecision(TraceEvent):
    """One Bingo history consultation at a trigger access.

    ``matched`` is ``"pc_address"`` (long event), ``"pc_offset"`` (short
    event, possibly voted), or ``"none"`` (cold lookup).
    ``num_matches`` counts the footprints that matched — greater than
    one only for voted short-event lookups — and ``predicted`` counts
    the blocks the (possibly voted) footprint put forward.
    """

    __slots__ = ("pc", "block", "region", "offset", "matched",
                 "num_matches", "threshold", "predicted")
    kind = "vote_decision"

    def __init__(
        self,
        pc: int,
        block: int,
        region: int,
        offset: int,
        matched: str,
        num_matches: int,
        threshold: float,
        predicted: int,
    ) -> None:
        self.pc = pc
        self.block = block
        self.region = region
        self.offset = offset
        self.matched = matched
        self.num_matches = num_matches
        self.threshold = threshold
        self.predicted = predicted


class RegionCommit(TraceEvent):
    """A tracked region's footprint moved into the history table.

    ``cause`` is ``"residency"`` when a cache eviction of a footprint
    block closed the residency (Section IV's end-of-residency rule) or
    ``"capacity"`` when the accumulation table recycled the entry.  The
    differential harness (:mod:`repro.check`) diffs residency commits
    against its unbounded reference model and uses capacity commits to
    keep that model in sync with the finite tables.
    """

    __slots__ = ("region", "pc", "offset", "trigger_block", "footprint",
                 "cause")
    kind = "region_commit"

    def __init__(
        self,
        region: int,
        pc: int,
        offset: int,
        trigger_block: int,
        footprint: int,
        cause: str,
    ) -> None:
        self.region = region
        self.pc = pc
        self.offset = offset
        self.trigger_block = trigger_block
        self.footprint = footprint  # the bit-mask of the committed Footprint
        self.cause = cause

    @property
    def capacity(self) -> bool:
        return self.cause == "capacity"


class RegionDrop(TraceEvent):
    """The filter table silently dropped a single-access region.

    Emitted only for *capacity* replacement — a region explicitly removed
    (graduation, end of residency) trains nothing and is not traced.  The
    reference models need this to know a region's trigger was forgotten.
    """

    __slots__ = ("region",)
    kind = "region_drop"

    def __init__(self, region: int) -> None:
        self.region = region


class HistoryEvict(TraceEvent):
    """The history table displaced an entry on insert (capacity eviction).

    ``key`` is the displaced entry's long-event tag; ``pc``/``offset``
    are its short-event components.  The unbounded reference history
    removes the same entry so later votes agree with the finite table.
    """

    __slots__ = ("key", "pc", "offset")
    kind = "history_evict"

    def __init__(self, key: int, pc: int, offset: int) -> None:
        self.key = key
        self.pc = pc
        self.offset = offset


#: kind -> event class, for deserialisation
EVENT_KINDS: Dict[str, Type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        DemandHit,
        DemandMiss,
        PrefetchIssued,
        PrefetchFill,
        Eviction,
        VoteDecision,
        RegionCommit,
        RegionDrop,
        HistoryEvict,
    )
}


def event_from_dict(data: dict) -> TraceEvent:
    """Rebuild a typed event from its dict form (inverse of ``to_dict``)."""
    try:
        cls = EVENT_KINDS[data["kind"]]
    except KeyError:
        raise ValueError(f"unknown event kind in {data!r}") from None
    return cls.from_dict(data)
