"""Trace sinks: where observability events go.

The contract is deliberately tiny — ``enabled`` plus ``emit(event)`` —
because emit sites sit on the simulator's hot path.  Components default
to the module-level :data:`NULL_SINK`, whose ``enabled`` is ``False``,
so a disabled run pays exactly one attribute check per potential event
and allocates nothing.

Concrete sinks:

* :class:`RingBufferSink` — keeps the *last* N events (flight-recorder
  debugging: "what led up to this?");
* :class:`RecordingSink` — keeps the *first* N events, then disables
  itself (golden fixtures, conformance checks);
* :class:`JsonlSink` — streams every event as one JSON object per line
  (the ``bingo-sim run --trace`` format).

:func:`replay_llc_counters` recomputes the LLC's counter totals from a
recorded event stream; the regression suite asserts it agrees exactly
with the live :class:`~repro.common.stats.StatGroup`.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.events import TraceEvent, event_from_dict


class TraceSink:
    """Event consumer protocol.

    ``enabled`` is read by every emit site *before* constructing the
    event, so a sink can stop collection (see :class:`RecordingSink`)
    by flipping it to ``False``.
    """

    enabled: bool = True

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events to durable storage (file sinks).

        The simulation service calls this between jobs so a later crash
        cannot truncate an earlier job's trace; in-memory sinks have
        nothing to do.
        """

    def close(self) -> None:
        """Flush and release resources (file sinks); idempotent."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(TraceSink):
    """Discards everything; ``enabled`` is False so emit sites skip it."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - guarded
        pass


#: The process-wide default sink.  Components hold a reference to this
#: object until a run wires a real sink in; the hot path's guard is
#: ``if sink.enabled:`` against this instance.
NULL_SINK = NullSink()


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events (a flight recorder)."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: "deque[TraceEvent]" = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class RecordingSink(TraceSink):
    """Keeps the first ``limit`` events (0 = unlimited) in order.

    Once the limit is reached the sink sets ``enabled = False``, so the
    rest of the run reverts to null-sink cost.
    """

    def __init__(self, limit: int = 0) -> None:
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        self.limit = limit
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)
        if self.limit and len(self.events) >= self.limit:
            self.enabled = False

    def __len__(self) -> int:
        return len(self.events)


class TeeSink(TraceSink):
    """Fans one event stream out to several child sinks.

    A child that disables itself (a full :class:`RecordingSink`) is
    skipped; the tee reports ``enabled`` as long as *any* child still
    listens, so emit sites keep their single-attribute-check guard.
    """

    def __init__(self, sinks: Sequence[TraceSink]) -> None:
        self.sinks: List[TraceSink] = list(sinks)
        if not self.sinks:
            raise ValueError("TeeSink needs at least one child sink")

    @property  # type: ignore[override]
    def enabled(self) -> bool:
        return any(sink.enabled for sink in self.sinks)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            if sink.enabled:
                sink.emit(event)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class JsonlSink(TraceSink):
    """Streams events to ``path``, one compact JSON object per line.

    ``limit`` (0 = unlimited) truncates long runs: after ``limit``
    events the sink disables itself, leaving a valid prefix trace.
    ``count`` is the number of events written.
    """

    def __init__(self, path: Union[str, Path], limit: int = 0) -> None:
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        self.path = Path(path)
        self.limit = limit
        self.count = 0
        self._fh = open(self.path, "w", encoding="utf-8")

    def emit(self, event: TraceEvent) -> None:
        json.dump(event.to_dict(), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.count += 1
        if self.limit and self.count >= self.limit:
            self.enabled = False

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None


def read_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a JSONL trace back into typed events."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


def replay_llc_counters(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """Recompute the LLC counter totals implied by an event stream.

    Returns the same keys the hierarchy's ``llc`` stat group uses
    (``demand_hits`` excludes covered first-uses, exactly as the live
    counters do), plus ``evictions`` covering both capacity evictions
    and invalidations.  A complete trace replayed through this function
    must match the run's final totals — that equivalence is the
    observability layer's correctness invariant.
    """
    totals = {
        "demand_accesses": 0,
        "demand_hits": 0,
        "demand_misses": 0,
        "covered": 0,
        "late_covered": 0,
        "prefetches_issued": 0,
        "prefetch_fills": 0,
        "evictions": 0,
        "overpredictions": 0,
        "vote_decisions": 0,
    }
    issued = set()
    for event in events:
        kind = event.kind
        if kind == "demand_hit":
            totals["demand_accesses"] += 1
            if event.covered:
                totals["covered"] += 1
                if event.late:
                    totals["late_covered"] += 1
            else:
                totals["demand_hits"] += 1
        elif kind == "demand_miss":
            totals["demand_accesses"] += 1
            totals["demand_misses"] += 1
        elif kind == "prefetch_issued":
            totals["prefetches_issued"] += 1
            issued.add(event.block)
        elif kind == "prefetch_fill":
            totals["prefetch_fills"] += 1
            if event.block not in issued:
                raise ValueError(
                    f"trace replays a fill for block {event.block:#x} "
                    "that was never issued"
                )
        elif kind == "eviction":
            totals["evictions"] += 1
            if event.prefetched and not event.used:
                totals["overpredictions"] += 1
        elif kind == "vote_decision":
            totals["vote_decisions"] += 1
    return totals


def build_sink(config) -> Optional[TraceSink]:
    """Construct the sink an :class:`ObservabilityConfig` asks for.

    Returns ``None`` when the config requests no tracing, so callers can
    distinguish "engine owns a file sink it must close" from "nothing to
    do".
    """
    if config is None or not config.trace_path:
        return None
    return JsonlSink(config.trace_path, limit=config.trace_limit)
