"""Interval timelines: periodic stat snapshots and derived curves.

End-of-run counters average away phase behaviour — a prefetcher that is
brilliant for the first half of a run and harmful for the second looks
mediocre.  The :class:`TimelineRecorder` captures the LLC/DRAM counter
state and per-core progress every N retired instructions (the engine
drives it), and :func:`timeline_curves` turns consecutive samples into
per-interval IPC / MPKI / coverage / accuracy rows.

Samples are plain JSON-encodable dicts so they can live on
:class:`~repro.sim.results.SimResult` and round-trip through the
executor's on-disk cache unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.stats import StatGroup


class TimelineRecorder:
    """Collects cumulative counter samples at a fixed instruction cadence.

    Each sample is ``{"instructions", "cores", "llc", "dram"}`` where
    ``cores`` holds ``[retired_instructions, retire_cycles]`` per core
    and ``llc``/``dram`` are *cumulative* counter dicts — deltas are
    taken at analysis time, so arbitrary re-partitions of the samples
    still sum to the whole-run totals.
    """

    def __init__(
        self, interval: int, llc_stats: StatGroup, dram_stats: StatGroup
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self._llc = llc_stats
        self._dram = dram_stats
        self.samples: List[Dict[str, object]] = []

    def sample(self, instructions: int, cores: Sequence) -> None:
        """Record the current counter state at ``instructions`` retired."""
        self.samples.append(
            {
                "instructions": instructions,
                "cores": [[core.instructions, core.time] for core in cores],
                "llc": self._llc.counters(),
                "dram": self._dram.counters(),
            }
        )

    def last_instructions(self) -> int:
        """Retired-instruction position of the latest sample (0 if none)."""
        if not self.samples:
            return 0
        return self.samples[-1]["instructions"]  # type: ignore[return-value]


def _zero_sample(num_cores: int) -> Dict[str, object]:
    return {
        "instructions": 0,
        "cores": [[0, 0.0] for _ in range(num_cores)],
        "llc": {},
        "dram": {},
    }


def timeline_curves(samples: Sequence[Dict[str, object]]) -> List[Dict[str, float]]:
    """Per-interval metric rows from cumulative timeline samples.

    Each row covers the span between two consecutive samples (the first
    spans from run start): system IPC (sum of per-core IPCs over the
    interval), LLC MPKI, coverage, accuracy, and the raw miss/covered/
    issued deltas the ratios derive from.
    """
    rows: List[Dict[str, float]] = []
    if not samples:
        return rows
    prev = _zero_sample(len(samples[0]["cores"]))  # type: ignore[arg-type]
    for sample in samples:
        d_instr = sample["instructions"] - prev["instructions"]
        prev_llc, llc = prev["llc"], sample["llc"]

        def delta(counter: str) -> float:
            return llc.get(counter, 0) - prev_llc.get(counter, 0)

        ipc = 0.0
        for (instr, cycles), (p_instr, p_cycles) in zip(
            sample["cores"], prev["cores"]
        ):
            d_cycles = cycles - p_cycles
            if d_cycles > 0:
                ipc += (instr - p_instr) / d_cycles
        misses = delta("demand_misses")
        covered = delta("covered")
        issued = delta("prefetches_issued")
        would_miss = covered + misses
        rows.append(
            {
                "instructions": sample["instructions"],
                "interval_instructions": d_instr,
                "ipc": ipc,
                "mpki": misses / d_instr * 1000 if d_instr else 0.0,
                "coverage": covered / would_miss if would_miss else 0.0,
                "accuracy": min(1.0, covered / issued) if issued else 0.0,
                "demand_misses": misses,
                "covered": covered,
                "prefetches_issued": issued,
            }
        )
        prev = sample
    return rows
