"""Structured observability: decision traces, timelines, profiling.

The simulator's counters say *how much* happened; this package records
*what* happened.  Three pieces:

* :mod:`repro.obs.events` — typed event records (``PrefetchIssued``,
  ``DemandHit``, ``VoteDecision``, ...) emitted from the memory
  hierarchy, the LLC, and Bingo's predictor;
* :mod:`repro.obs.sinks` — where events go: a null sink (the default;
  the hot path pays one attribute check), a ring buffer, a first-N
  recorder, or a JSONL file, plus replay helpers that recompute counter
  totals from a trace;
* :mod:`repro.obs.timeline` — periodic :class:`~repro.common.stats.StatGroup`
  snapshots turned into per-phase IPC/MPKI/coverage curves.

:class:`ObservabilityConfig` bundles the knobs so a single picklable
value can travel from the CLI through :class:`repro.sim.executor.SimJob`
into worker processes.  ``repro.obs.golden`` (imported explicitly, not
here — it pulls in the engine) records golden traces for the regression
suite.
"""

from repro.obs.config import ObservabilityConfig
from repro.obs.events import (
    DemandHit,
    DemandMiss,
    Eviction,
    HistoryEvict,
    PrefetchFill,
    PrefetchIssued,
    RegionCommit,
    RegionDrop,
    TraceEvent,
    VoteDecision,
    event_from_dict,
)
from repro.obs.profiling import profile_call
from repro.obs.sinks import (
    NULL_SINK,
    JsonlSink,
    NullSink,
    RecordingSink,
    RingBufferSink,
    TeeSink,
    TraceSink,
    read_trace,
    replay_llc_counters,
)
from repro.obs.timeline import TimelineRecorder, timeline_curves

__all__ = [
    "ObservabilityConfig",
    "TraceEvent",
    "DemandHit",
    "DemandMiss",
    "Eviction",
    "PrefetchFill",
    "PrefetchIssued",
    "VoteDecision",
    "RegionCommit",
    "RegionDrop",
    "HistoryEvict",
    "event_from_dict",
    "TraceSink",
    "NullSink",
    "NULL_SINK",
    "RingBufferSink",
    "RecordingSink",
    "TeeSink",
    "JsonlSink",
    "read_trace",
    "replay_llc_counters",
    "TimelineRecorder",
    "timeline_curves",
    "profile_call",
]
