"""Lightweight cProfile wrapper for "why is this run slow?" sessions.

Deliberately minimal: one function that profiles a callable and prints
the top-k hot spots.  It backs ``bingo-sim run --profile`` and is usable
directly from a REPL::

    from repro.obs import profile_call
    result = profile_call(lambda: run_simulation("em3d", "bingo"))
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from typing import Callable, Optional, TextIO, TypeVar

T = TypeVar("T")


def profile_call(
    fn: Callable[[], T],
    top: int = 15,
    sort: str = "cumulative",
    stream: Optional[TextIO] = None,
) -> T:
    """Run ``fn`` under cProfile; print the ``top`` entries; return its result.

    ``sort`` is any :mod:`pstats` sort key (``"cumulative"``,
    ``"tottime"``, ...).  Output goes to ``stream`` (default: stdout).
    """
    if top <= 0:
        raise ValueError(f"top must be positive, got {top}")
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    (stream or sys.stdout).write(buffer.getvalue())
    return result
