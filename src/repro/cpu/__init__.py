"""Core timing model and trace plumbing.

:mod:`repro.cpu.core` is the ROB-window approximation of the paper's OoO
cores; :mod:`repro.cpu.trace` defines the instruction record; and
:mod:`repro.cpu.tracefile` captures/replays traces on disk.
"""

from repro.cpu.core import CoreTimingModel
from repro.cpu.trace import TraceRecord
from repro.cpu.tracefile import (
    capture_workload,
    read_trace,
    workload_from_traces,
    write_trace,
)

__all__ = [
    "CoreTimingModel",
    "TraceRecord",
    "capture_workload",
    "read_trace",
    "workload_from_traces",
    "write_trace",
]
