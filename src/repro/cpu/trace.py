"""Trace records: the unit of work the simulator consumes.

A workload generator yields :class:`TraceRecord` objects.  Each record is
one *retired instruction*; memory instructions carry a virtual address.
``depends_on_prev_load`` marks true data dependences on the previous load
(pointer chasing), which the timing model serialises — this is what makes
temporally-correlated workloads like Zeus gain little from spatial
prefetching even when their accesses are predictable (Section VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceRecord:
    """One instruction of a workload trace."""

    pc: int
    address: int = 0  # virtual byte address; meaningful iff is_mem
    is_mem: bool = False
    is_write: bool = False
    depends_on_prev_load: bool = False

    @classmethod
    def compute(cls, pc: int) -> "TraceRecord":
        """A non-memory instruction."""
        return cls(pc=pc)

    @classmethod
    def load(
        cls, pc: int, address: int, depends_on_prev_load: bool = False
    ) -> "TraceRecord":
        return cls(
            pc=pc,
            address=address,
            is_mem=True,
            depends_on_prev_load=depends_on_prev_load,
        )

    @classmethod
    def store(cls, pc: int, address: int) -> "TraceRecord":
        return cls(pc=pc, address=address, is_mem=True, is_write=True)
