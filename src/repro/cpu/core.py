"""A ROB-window timing model of a 4-wide out-of-order core.

Full cycle-accurate OoO simulation is neither feasible in Python at the
instruction counts the experiments need nor necessary: for memory-bound
workloads, performance is dominated by (a) how long misses take, (b) how
many independent misses overlap inside the reorder-buffer window, and
(c) serialisation through dependent loads.  This model captures exactly
those three effects:

* the front end dispatches ``width`` instructions per cycle;
* dispatch of instruction *i* cannot proceed until instruction
  *i − rob_entries* has retired (finite ROB);
* retirement is in-order: ``retire(i) = max(retire(i−1), complete(i))``;
* a load marked ``depends_on_prev_load`` cannot issue before the previous
  load's value has arrived (pointer chasing serialises misses);
* other loads issue at dispatch, so independent misses within the window
  overlap — memory-level parallelism for free, as in real OoO cores.

IPC is then ``instructions / last retire time``.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import CoreConfig
from repro.common.stats import StatGroup


class CoreTimingModel:
    """Tracks one core's dispatch/retire clock across a trace."""

    #: execution latency of a non-memory instruction, cycles
    ALU_LATENCY = 1.0

    def __init__(self, config: CoreConfig, stats: Optional[StatGroup] = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else StatGroup("core")
        self._dispatch_interval = 1.0 / config.width
        self._rob = config.rob_entries
        # Ring buffer of the last ROB-many retire times.
        self._retire_ring = [0.0] * self._rob
        self._count = 0
        self._last_dispatch = 0.0
        self._last_retire = 0.0
        self._last_load_complete = 0.0
        # fast-path counter cells: written on every retired instruction
        self._stat_instructions = self.stats.counter("instructions")
        self._stat_cycles = self.stats.counter("cycles")

    # -- queries ----------------------------------------------------------
    @property
    def instructions(self) -> int:
        return self._count

    @property
    def time(self) -> float:
        """Current retire-clock position (cycles)."""
        return self._last_retire

    def ipc(self) -> float:
        return self._count / self._last_retire if self._last_retire else 0.0

    # -- the dispatch window --------------------------------------------------
    def next_issue_time(self) -> float:
        """Cycle at which the next instruction can dispatch.

        Bounded both by front-end width and by ROB availability (the
        instruction ROB-many earlier must have retired to free an entry).
        """
        dispatch = self._last_dispatch + self._dispatch_interval
        if self._count >= self._rob:
            dispatch = max(dispatch, self._retire_ring[self._count % self._rob])
        return dispatch

    def load_issue_time(self, depends_on_prev_load: bool) -> float:
        """Cycle at which the next instruction's memory access issues."""
        issue = self.next_issue_time()
        if depends_on_prev_load:
            issue = max(issue, self._last_load_complete)
        return issue

    # -- recording outcomes ------------------------------------------------------
    def retire_compute(self) -> float:
        """Record a non-memory instruction; returns its retire time."""
        dispatch = self.next_issue_time()
        return self._retire(dispatch, dispatch + self.ALU_LATENCY, is_load=False)

    def retire_memory(
        self, issue: float, latency: float, is_load: bool = True
    ) -> float:
        """Record a memory instruction that issued at ``issue``.

        ``latency`` is the end-to-end hierarchy latency returned by
        :meth:`repro.memsys.hierarchy.MemoryHierarchy.access`.
        """
        dispatch = self.next_issue_time()
        complete = issue + latency
        return self._retire(dispatch, complete, is_load=is_load)

    def _retire(self, dispatch: float, complete: float, is_load: bool) -> float:
        retire = max(self._last_retire, complete)
        self._retire_ring[self._count % self._rob] = retire
        self._count += 1
        self._last_dispatch = dispatch
        self._last_retire = retire
        if is_load:
            self._last_load_complete = complete
        self._stat_instructions.value = self._count
        self._stat_cycles.value = retire
        return retire
