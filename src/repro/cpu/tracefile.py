"""Trace capture and replay.

Workloads are normally generated on the fly, but a downstream user often
wants to (a) snapshot a generator's output for exact cross-tool
comparison, or (b) feed the simulator a trace captured elsewhere (e.g.
converted from a ChampSim trace).  This module defines a small text
format and the plumbing to use trace files as workloads.

Format: one record per line, ``gzip``-compressed when the path ends in
``.gz``.  Lines are one of::

    C <pc>                 # compute instruction
    L <pc> <vaddr> [d]     # load; 'd' marks depends-on-previous-load
    S <pc> <vaddr>         # store

with ``pc``/``vaddr`` in hex.  Blank lines and ``#`` comments are
ignored.  The format is deliberately trivial — greppable, diffable, and
writable from any language.

Trace files convert losslessly to and from the packed binary arenas the
engine fast path consumes: see
:func:`repro.sim.compile.compile_trace_files` and
:func:`repro.sim.compile.write_compiled_trace`.
"""

from __future__ import annotations

import gzip
import itertools
from pathlib import Path
from typing import Dict, Iterable, Iterator, Union

from repro.cpu.trace import TraceRecord
from repro.workloads.base import Workload

PathLike = Union[str, Path]


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def format_record(record: TraceRecord) -> str:
    """One record as one line of the trace format."""
    if not record.is_mem:
        return f"C {record.pc:x}"
    if record.is_write:
        return f"S {record.pc:x} {record.address:x}"
    suffix = " d" if record.depends_on_prev_load else ""
    return f"L {record.pc:x} {record.address:x}{suffix}"


def parse_record(line: str) -> TraceRecord:
    """Parse one line; raises ValueError with the offending text."""
    fields = line.split()
    try:
        kind = fields[0]
        if kind == "C" and len(fields) == 2:
            return TraceRecord.compute(pc=int(fields[1], 16))
        if kind == "L" and len(fields) in (3, 4):
            dependent = len(fields) == 4
            if dependent and fields[3] != "d":
                raise ValueError
            return TraceRecord.load(
                pc=int(fields[1], 16),
                address=int(fields[2], 16),
                depends_on_prev_load=dependent,
            )
        if kind == "S" and len(fields) == 3:
            return TraceRecord.store(pc=int(fields[1], 16),
                                     address=int(fields[2], 16))
    except (IndexError, ValueError):
        pass
    raise ValueError(f"malformed trace line: {line!r}")


def write_trace(
    path: PathLike, records: Iterable[TraceRecord], limit: int = None
) -> int:
    """Write records to a trace file; returns the number written.

    ``limit`` bounds how many records are consumed — mandatory in spirit
    when ``records`` is one of the package's infinite generators.
    """
    path = Path(path)
    count = 0
    with _open(path, "w") as fh:
        for record in itertools.islice(records, limit):
            fh.write(format_record(record) + "\n")
            count += 1
    return count


def read_trace(path: PathLike) -> Iterator[TraceRecord]:
    """Stream records from a trace file (lazily, line by line)."""
    path = Path(path)
    with _open(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield parse_record(line)


def capture_workload(
    workload: Workload, directory: PathLike, records_per_core: int,
    compress: bool = True,
) -> Dict[int, Path]:
    """Snapshot every core's stream of a workload to trace files.

    Returns ``{core_id: path}``; replay with :func:`workload_from_traces`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".trace.gz" if compress else ".trace"
    paths: Dict[int, Path] = {}
    for core_id in range(workload.num_cores):
        path = directory / f"{workload.name}.core{core_id}{suffix}"
        write_trace(path, workload.core_stream(core_id), records_per_core)
        paths[core_id] = path
    return paths


def workload_from_traces(
    name: str, paths: Dict[int, PathLike], loop: bool = True
) -> Workload:
    """Build a workload that replays trace files, one per core.

    With ``loop=True`` (default) a finished trace restarts from the top,
    so finite captures satisfy the engine's per-core instruction budgets.
    """
    if not paths:
        raise ValueError("need at least one core trace")

    def make_factory(path: Path):
        def factory(rng, core_id) -> Iterator[TraceRecord]:
            while True:
                empty = True
                for record in read_trace(path):
                    empty = False
                    yield record
                if empty:
                    raise ValueError(f"trace file {path} contains no records")
                if not loop:
                    return

        return factory

    return Workload(
        name=name,
        streams={core: make_factory(Path(path)) for core, path in paths.items()},
        description=f"replayed from {len(paths)} trace file(s)",
    )
