"""Figure 2: accuracy and match probability of single-event heuristics.

For each of the five trigger-event heuristics (``PC+Address`` …
``Offset``), run a single-event spatial prefetcher over every workload
and report, averaged across workloads:

* **accuracy** — prefetched blocks used before eviction, and
* **match probability** — fraction of trigger lookups that found the
  event in the history table.

The paper's trend: longer events are more accurate but match rarely;
shorter events match almost always but predict loosely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.core.events import LONGEST_TO_SHORTEST, EventKind
from repro.experiments.common import cached_run, default_params
from repro.sim.engine import SimulationParams
from repro.workloads.registry import WORKLOAD_NAMES


def run(
    workloads: Optional[Sequence[str]] = None,
    kinds: Sequence[EventKind] = LONGEST_TO_SHORTEST,
    params: Optional[SimulationParams] = None,
) -> List[Dict[str, object]]:
    """One row per event heuristic, longest first."""
    workloads = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    params = params if params is not None else default_params()
    rows: List[Dict[str, object]] = []
    for kind in kinds:
        covered = 0
        decided = 0
        match_probabilities = []
        for workload in workloads:
            result = cached_run(
                workload,
                "multi-event",
                params,
                prefetcher_kwargs={"kinds": (kind,)},
            )
            # Accuracy is *pooled* over all workloads (total used / total
            # issued): rare events issue no prefetches at all on some
            # workloads, and averaging in their undefined-as-zero
            # accuracies would misrepresent the heuristic.
            covered += result.covered
            decided += result.prefetches_issued
            match_probabilities.append(
                result.prefetcher_ratio("lookup_hits", "triggers")
            )
        rows.append(
            {
                "event": kind.value,
                "accuracy": min(1.0, covered / decided) if decided else 0.0,
                "match_probability": arithmetic_mean(match_probabilities),
            }
        )
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["event", "accuracy", "match_probability"],
        title="Fig. 2 — accuracy & match probability per event (avg of workloads)",
        percent_columns=["accuracy", "match_probability"],
    )


if __name__ == "__main__":
    print(format_results(run()))
