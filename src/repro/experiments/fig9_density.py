"""Figure 9: performance-density improvement.

Performance density = throughput / chip area.  Each prefetcher's
geometric-mean speedup (Fig. 8) is discounted by the area its metadata
adds (:class:`repro.analysis.area.AreaModel`).  The paper's point: Bingo
keeps nearly all of its performance win (59 % density improvement vs
60 % performance) because its 119 KB of metadata is a sliver of the chip.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.area import AreaModel
from repro.analysis.metrics import gmean_speedup
from repro.analysis.report import format_table
from repro.common.config import SystemConfig
from repro.experiments.common import (
    PAPER_PREFETCHERS,
    default_params,
    run_matrix,
)
from repro.sim.engine import SimulationParams
from repro.workloads.registry import WORKLOAD_NAMES


def run(
    workloads: Optional[Sequence[str]] = None,
    prefetchers: Sequence[str] = PAPER_PREFETCHERS,
    params: Optional[SimulationParams] = None,
    area_model: Optional[AreaModel] = None,
) -> List[Dict[str, object]]:
    """One row per prefetcher: speedup, metadata size, density improvement.

    The area model is evaluated against the *paper's* full-size system
    (Table I) — metadata sizes don't scale with our experiment hierarchy,
    so charging them against the scaled chip would overstate the tax.
    """
    workloads = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    params = params if params is not None else default_params()
    area_model = area_model if area_model is not None else AreaModel()
    paper_system = SystemConfig()
    matrix = run_matrix(workloads, list(prefetchers), params)
    rows: List[Dict[str, object]] = []
    for prefetcher in prefetchers:
        perf = gmean_speedup(matrix, prefetcher)
        storage_bits = next(
            runs[prefetcher].prefetcher_storage_bits for runs in matrix.values()
        )
        density = area_model.density_improvement(
            perf, paper_system, storage_bits
        )
        rows.append(
            {
                "prefetcher": prefetcher,
                "speedup": perf,
                "storage_kib": storage_bits / 8 / 1024,
                "density_improvement": density,
            }
        )
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["prefetcher", "speedup", "storage_kib", "density_improvement"],
        title="Fig. 9 — performance density (throughput per unit area)",
    )


if __name__ == "__main__":
    print(format_results(run()))
