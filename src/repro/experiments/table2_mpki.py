"""Table II: workload characterisation — baseline LLC MPKI.

Runs every workload with no prefetcher and reports the measured LLC
MPKI next to the paper's column.  This is the calibration record for the
synthetic workload substitution (DESIGN.md §2): absolute agreement is
not expected, the *ordering and rough magnitudes* are.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments.common import cached_run, default_params
from repro.sim.engine import SimulationParams
from repro.workloads.registry import WORKLOAD_NAMES, make_workload


def run(
    workloads: Optional[Sequence[str]] = None,
    params: Optional[SimulationParams] = None,
) -> List[Dict[str, object]]:
    """One row per workload: description, paper MPKI, measured MPKI."""
    workloads = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    params = params if params is not None else default_params()
    rows: List[Dict[str, object]] = []
    for name in workloads:
        workload = make_workload(name)
        result = cached_run(name, "none", params)
        rows.append(
            {
                "workload": name,
                "description": workload.description,
                "paper_mpki": workload.paper_mpki,
                "measured_mpki": round(result.mpki, 1),
            }
        )
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["workload", "paper_mpki", "measured_mpki", "description"],
        title="Table II — workloads and baseline LLC MPKI (paper vs measured)",
    )


if __name__ == "__main__":
    print(format_results(run()))
