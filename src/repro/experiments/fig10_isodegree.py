"""Figure 10: iso-degree comparison of SHH prefetchers against Bingo.

PPH methods get much of their edge from fetching a whole footprint at
once.  This experiment "lifts the ban" on the SHH baselines' degree —
BOP and VLDP run at degree 32, SPP's confidence threshold drops to 1 %
— and compares the original ('Orig') and aggressive ('Aggr') variants.
The paper's result: aggressive SHH gains a little timeliness, explodes
in overprediction, and Bingo still wins comfortably.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, geometric_mean
from repro.analysis.report import format_table
from repro.experiments.common import cached_run, default_params
from repro.sim.engine import SimulationParams
from repro.sim.results import speedup
from repro.workloads.registry import WORKLOAD_NAMES

#: the Section VI-E variants: (label, prefetcher, kwargs)
VARIANTS = (
    ("bop-orig", "bop", {}),
    ("bop-aggr", "bop", {"degree": 32}),
    ("spp-orig", "spp", {}),
    ("spp-aggr", "spp", {"confidence_threshold": 0.01, "max_depth": 32}),
    ("vldp-orig", "vldp", {}),
    ("vldp-aggr", "vldp", {"degree": 32}),
    ("bingo", "bingo", {}),
)


def run(
    workloads: Optional[Sequence[str]] = None,
    params: Optional[SimulationParams] = None,
) -> List[Dict[str, object]]:
    """One row per variant: gmean speedup + average coverage/overprediction."""
    workloads = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    params = params if params is not None else default_params()
    rows: List[Dict[str, object]] = []
    for label, prefetcher, kwargs in VARIANTS:
        speedups = []
        coverages = []
        overpredictions = []
        for workload in workloads:
            baseline = cached_run(workload, "none", params)
            result = cached_run(
                workload, prefetcher, params, prefetcher_kwargs=kwargs
            )
            speedups.append(speedup(result, baseline))
            coverages.append(result.coverage)
            overpredictions.append(result.overprediction)
        rows.append(
            {
                "variant": label,
                "speedup": geometric_mean(speedups),
                "coverage": arithmetic_mean(coverages),
                "overprediction": arithmetic_mean(overpredictions),
            }
        )
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["variant", "speedup", "coverage", "overprediction"],
        title="Fig. 10 — iso-degree comparison (Orig vs Aggr SHH variants)",
        percent_columns=["coverage", "overprediction"],
    )


if __name__ == "__main__":
    print(format_results(run()))
