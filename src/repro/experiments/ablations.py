"""Ablations of Bingo's design choices (DESIGN.md §5).

Not figures from the paper, but the studies a reviewer would ask for:

* **unified vs cascaded storage** — same prediction behaviour, very
  different metadata cost (the Section IV storage claim, quantified);
* **vote threshold** — the 20 % multi-match heuristic vs alternatives,
  including the most-recent-match policy the paper also evaluated;
* **region size** — footprints over 1 KB / 2 KB / 4 KB regions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, geometric_mean
from repro.analysis.report import format_table
from repro.common.addresses import AddressMap
from repro.core.bingo import BingoPrefetcher
from repro.core.events import EventKind
from repro.core.multi_event import MultiEventSpatialPrefetcher
from repro.experiments.common import cached_run, default_params
from repro.sim.engine import SimulationParams
from repro.sim.results import speedup

#: a representative cross-section: one per workload family
DEFAULT_ABLATION_WORKLOADS = ("data_serving", "streaming", "em3d", "mix1")


def run_unified_vs_cascaded(
    workloads: Sequence[str] = DEFAULT_ABLATION_WORKLOADS,
    params: Optional[SimulationParams] = None,
) -> List[Dict[str, object]]:
    """Bingo's unified table vs the naive dual-table cascade."""
    params = params if params is not None else default_params()
    unified_bits = BingoPrefetcher().storage_bits
    cascaded_bits = MultiEventSpatialPrefetcher(
        kinds=(EventKind.PC_ADDRESS, EventKind.PC_OFFSET)
    ).storage_bits
    rows: List[Dict[str, object]] = []
    for design, prefetcher, kwargs, bits in (
        ("unified (Bingo)", "bingo", {}, unified_bits),
        (
            "cascaded dual-table",
            "multi-event",
            {"kinds": (EventKind.PC_ADDRESS, EventKind.PC_OFFSET)},
            cascaded_bits,
        ),
    ):
        speedups = []
        coverages = []
        for workload in workloads:
            baseline = cached_run(workload, "none", params)
            result = cached_run(
                workload, prefetcher, params, prefetcher_kwargs=kwargs
            )
            speedups.append(speedup(result, baseline))
            coverages.append(result.coverage)
        rows.append(
            {
                "design": design,
                "speedup": geometric_mean(speedups),
                "coverage": arithmetic_mean(coverages),
                "storage_kib": bits / 8 / 1024,
            }
        )
    return rows


def format_unified_vs_cascaded(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["design", "speedup", "coverage", "storage_kib"],
        title="Ablation — unified history table vs cascaded dual tables",
        percent_columns=["coverage"],
    )


def run_vote_threshold(
    workloads: Sequence[str] = DEFAULT_ABLATION_WORKLOADS,
    thresholds: Sequence[float] = (0.05, 0.20, 0.50, 0.80),
    params: Optional[SimulationParams] = None,
    include_most_recent: bool = True,
) -> List[Dict[str, object]]:
    """Sweep the short-event multi-match policy (paper default: 20 % vote)."""
    params = params if params is not None else default_params()
    variants = [
        (f"vote {threshold:.0%}", {"vote_threshold": threshold})
        for threshold in thresholds
    ]
    if include_most_recent:
        variants.append(("most recent", {"short_match_policy": "most_recent"}))
    rows: List[Dict[str, object]] = []
    for label, kwargs in variants:
        speedups = []
        coverages = []
        accuracies = []
        for workload in workloads:
            baseline = cached_run(workload, "none", params)
            result = cached_run(
                workload, "bingo", params, prefetcher_kwargs=kwargs
            )
            speedups.append(speedup(result, baseline))
            coverages.append(result.coverage)
            accuracies.append(result.accuracy)
        rows.append(
            {
                "policy": label,
                "speedup": geometric_mean(speedups),
                "coverage": arithmetic_mean(coverages),
                "accuracy": arithmetic_mean(accuracies),
            }
        )
    return rows


def format_vote_threshold(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["policy", "speedup", "coverage", "accuracy"],
        title="Ablation — short-event multi-match policy (paper: 20% vote)",
        percent_columns=["coverage", "accuracy"],
    )


def run_metadata_sharing(
    workloads: Sequence[str] = DEFAULT_ABLATION_WORKLOADS,
    params: Optional[SimulationParams] = None,
) -> List[Dict[str, object]]:
    """Private per-core prefetchers (the paper's setup) vs one shared one.

    Section V: "we consider every core to have its own prefetcher,
    independent of others (i.e., no metadata sharing among cores)".  This
    ablation quantifies that choice: a single Bingo instance observing all
    cores' LLC traffic shares history (homogeneous server workloads can
    benefit) but also mixes per-core patterns under one set of tables.
    """
    from repro.experiments.common import EXPERIMENT_SCALE, experiment_system
    from repro.prefetchers.registry import make_prefetcher
    from repro.sim.runner import run_simulation

    params = params if params is not None else default_params()
    system = experiment_system()
    rows: List[Dict[str, object]] = []
    for design in ("private", "shared"):
        speedups = []
        coverages = []
        for workload in workloads:
            common = dict(
                system=system,
                instructions_per_core=params.instructions_per_core,
                warmup_instructions=params.warmup_instructions,
                scale=EXPERIMENT_SCALE,
            )
            baseline = run_simulation(workload, prefetcher="none", **common)
            if design == "private":
                prefetchers = None
                result = run_simulation(workload, prefetcher="bingo", **common)
            else:
                shared = make_prefetcher("bingo", system.address_map)
                prefetchers = [shared] * system.num_cores
                result = run_simulation(
                    workload, prefetcher="bingo", prefetchers=prefetchers,
                    **common,
                )
            speedups.append(speedup(result, baseline))
            coverages.append(result.coverage)
        rows.append(
            {
                "metadata": design,
                "speedup": geometric_mean(speedups),
                "coverage": arithmetic_mean(coverages),
            }
        )
    return rows


def format_metadata_sharing(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["metadata", "speedup", "coverage"],
        title="Ablation — private per-core vs shared Bingo metadata",
        percent_columns=["coverage"],
    )


def run_training_level(
    workloads: Sequence[str] = DEFAULT_ABLATION_WORKLOADS,
    params: Optional[SimulationParams] = None,
) -> List[Dict[str, object]]:
    """Train Bingo at the LLC (the paper's placement) vs at the L1D.

    Section V: "the fairly large capacity of a multi-megabyte LLC paves
    the way for longer residency of pages... enabling spatial prefetchers
    to completely observe the data accesses of each page".  At the L1,
    residencies end after a few hundred blocks of traffic, truncating
    footprints.
    """
    from repro.experiments.common import EXPERIMENT_SCALE, experiment_system
    from repro.sim.runner import run_simulation

    params = params if params is not None else default_params()
    system = experiment_system()
    rows: List[Dict[str, object]] = []
    for level in ("llc", "l1"):
        speedups = []
        coverages = []
        for workload in workloads:
            common = dict(
                system=system,
                instructions_per_core=params.instructions_per_core,
                warmup_instructions=params.warmup_instructions,
                scale=EXPERIMENT_SCALE,
            )
            baseline = run_simulation(workload, prefetcher="none", **common)
            result = run_simulation(
                workload, prefetcher="bingo", train_at=level, **common
            )
            speedups.append(speedup(result, baseline))
            coverages.append(result.coverage)
        rows.append(
            {
                "trained_at": level,
                "speedup": geometric_mean(speedups),
                "coverage": arithmetic_mean(coverages),
            }
        )
    return rows


def format_training_level(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["trained_at", "speedup", "coverage"],
        title="Ablation — Bingo trained at the LLC (paper) vs at the L1D",
        percent_columns=["coverage"],
    )


def run_region_size(
    workloads: Sequence[str] = DEFAULT_ABLATION_WORKLOADS,
    region_sizes: Sequence[int] = (1024, 2048, 4096),
    params: Optional[SimulationParams] = None,
) -> List[Dict[str, object]]:
    """Footprint region size: the paper's 2 KB vs half/double.

    Region size is a *system-level* geometry (the hierarchy's address map
    carries it), so these runs bypass the shared cache and build their
    own engines.
    """
    from repro.experiments.common import EXPERIMENT_SCALE, experiment_system
    from repro.sim.runner import run_simulation

    params = params if params is not None else default_params()
    rows: List[Dict[str, object]] = []
    for region_size in region_sizes:
        system = experiment_system().scaled(
            address_map=AddressMap(region_size=region_size)
        )
        speedups = []
        coverages = []
        for workload in workloads:
            common = dict(
                system=system,
                instructions_per_core=params.instructions_per_core,
                warmup_instructions=params.warmup_instructions,
                scale=EXPERIMENT_SCALE,
            )
            baseline = run_simulation(workload, prefetcher="none", **common)
            result = run_simulation(workload, prefetcher="bingo", **common)
            speedups.append(speedup(result, baseline))
            coverages.append(result.coverage)
        rows.append(
            {
                "region_bytes": region_size,
                "blocks_per_region": region_size // 64,
                "speedup": geometric_mean(speedups),
                "coverage": arithmetic_mean(coverages),
            }
        )
    return rows


def format_region_size(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["region_bytes", "blocks_per_region", "speedup", "coverage"],
        title="Ablation — spatial region size (paper: 2 KB)",
        percent_columns=["coverage"],
    )
