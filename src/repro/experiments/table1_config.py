"""Table I: evaluation parameters.

Emits the simulated system's parameters — both the paper-sized default
(:class:`repro.common.config.SystemConfig`) and the scaled experiment
system actually used for the figures — so a bench run documents exactly
what was simulated.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import format_table
from repro.common.config import SystemConfig
from repro.experiments.common import EXPERIMENT_SCALE, experiment_system


def _describe(config: SystemConfig) -> Dict[str, str]:
    core = config.core
    return {
        "cores": f"{config.num_cores} x {core.width}-wide OoO, "
        f"{core.rob_entries}-entry ROB, {core.frequency_ghz:g} GHz",
        "l1d": f"{config.l1d.size_bytes // 1024} KB, {config.l1d.ways}-way, "
        f"{config.l1d.hit_latency}-cycle hit, {config.l1d.mshr_entries} MSHRs",
        "llc": f"{config.llc.size_bytes // 1024} KB, {config.llc.ways}-way, "
        f"{config.llc.hit_latency}-cycle hit (shared)",
        "dram": f"{config.dram.channels} channels, "
        f"{config.dram.zero_load_ns:g} ns zero-load, "
        f"{config.dram.peak_bandwidth_gbps:g} GB/s peak",
        "pages": f"{config.address_map.page_size} B OS pages, "
        f"random first-touch translation",
        "regions": f"{config.address_map.region_size} B spatial regions "
        f"({config.address_map.blocks_per_region} blocks)",
    }


def run() -> List[Dict[str, object]]:
    """One row per parameter: paper-sized vs experiment system."""
    paper = _describe(SystemConfig())
    scaled = _describe(experiment_system())
    return [
        {"parameter": key, "paper_system": paper[key], "experiment_system": scaled[key]}
        for key in paper
    ]


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["parameter", "paper_system", "experiment_system"],
        title=(
            "Table I — evaluation parameters "
            f"(experiments run at scale {EXPERIMENT_SCALE:g})"
        ),
    )


if __name__ == "__main__":
    print(format_results(run()))
