"""Figure 8: system performance, normalised to no prefetcher.

Speedup of each prefetcher over the no-prefetcher baseline, per workload
plus the geometric mean.  The paper's headline: Bingo improves
performance by 60 % on average (up to 285 % on em3d) and beats the best
prior spatial prefetcher by 11 %.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.experiments.common import PAPER_PREFETCHERS, default_params, run_matrix
from repro.sim.engine import SimulationParams
from repro.sim.results import speedup
from repro.workloads.registry import WORKLOAD_NAMES


def run(
    workloads: Optional[Sequence[str]] = None,
    prefetchers: Sequence[str] = PAPER_PREFETCHERS,
    params: Optional[SimulationParams] = None,
) -> List[Dict[str, object]]:
    """One row per workload (+ GMean); one speedup column per prefetcher."""
    workloads = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    params = params if params is not None else default_params()
    matrix = run_matrix(workloads, list(prefetchers), params)
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        baseline = matrix[workload]["none"]
        row: Dict[str, object] = {"workload": workload}
        for prefetcher in prefetchers:
            row[prefetcher] = speedup(matrix[workload][prefetcher], baseline)
        rows.append(row)
    gmean_row: Dict[str, object] = {"workload": "gmean"}
    for prefetcher in prefetchers:
        gmean_row[prefetcher] = geometric_mean(
            [row[prefetcher] for row in rows]
        )
    rows.append(gmean_row)
    return rows


def format_results(
    rows: List[Dict[str, object]], prefetchers: Sequence[str] = PAPER_PREFETCHERS
) -> str:
    return format_table(
        rows,
        columns=["workload"] + list(prefetchers),
        title="Fig. 8 — speedup over no-prefetcher baseline",
    )


if __name__ == "__main__":
    print(format_results(run()))
