"""Figure 6: Bingo miss coverage vs history-table size.

Sweep the history table from 1 K to 64 K entries (16-way throughout) and
report per-workload miss coverage.  The paper's result: coverage grows
with history size and plateaus beyond 16 K entries — the configuration
Bingo adopts (119 KB, ~6 % of the LLC).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments.common import cached_run, default_params
from repro.sim.engine import SimulationParams
from repro.workloads.registry import WORKLOAD_NAMES

#: the paper's x-axis
DEFAULT_SIZES = (1024, 2048, 4096, 8192, 16384, 32768, 65536)


def run(
    workloads: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    params: Optional[SimulationParams] = None,
) -> List[Dict[str, object]]:
    """One row per workload; one column per history size."""
    workloads = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    params = params if params is not None else default_params()
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        row: Dict[str, object] = {"workload": workload}
        for entries in sizes:
            result = cached_run(
                workload,
                "bingo",
                params,
                prefetcher_kwargs={"history_entries": entries},
            )
            row[_size_label(entries)] = result.coverage
        rows.append(row)
    return rows


def _size_label(entries: int) -> str:
    return f"{entries // 1024}K"


def format_results(
    rows: List[Dict[str, object]], sizes: Sequence[int] = DEFAULT_SIZES
) -> str:
    size_columns = [_size_label(entries) for entries in sizes]
    return format_table(
        rows,
        columns=["workload"] + size_columns,
        title="Fig. 6 — Bingo miss coverage vs history-table entries",
        percent_columns=size_columns,
    )


if __name__ == "__main__":
    print(format_results(run()))
