"""Figure 3: coverage and accuracy vs number of events (1–5).

A TAGE-like multi-event spatial prefetcher is given the N *longest*
events (N = 1 is ``PC+Address`` only; N = 5 adds everything down to
``Offset``).  The paper's finding — and the justification for Bingo's
two events — is that coverage jumps sharply from one event to two and
then plateaus, while accuracy stays roughly flat.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.core.events import LONGEST_TO_SHORTEST
from repro.experiments.common import cached_run, default_params
from repro.sim.engine import SimulationParams
from repro.workloads.registry import WORKLOAD_NAMES


def run(
    workloads: Optional[Sequence[str]] = None,
    max_events: int = 5,
    params: Optional[SimulationParams] = None,
) -> List[Dict[str, object]]:
    """One row per event-count N, averaged across workloads."""
    if not 1 <= max_events <= len(LONGEST_TO_SHORTEST):
        raise ValueError(f"max_events must be in [1, 5], got {max_events}")
    workloads = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    params = params if params is not None else default_params()
    rows: List[Dict[str, object]] = []
    for n in range(1, max_events + 1):
        kinds = LONGEST_TO_SHORTEST[:n]
        coverages = []
        covered = 0
        decided = 0
        for workload in workloads:
            result = cached_run(
                workload,
                "multi-event",
                params,
                prefetcher_kwargs={"kinds": kinds},
            )
            coverages.append(result.coverage)
            # Pooled accuracy - see fig2_events for the rationale.
            covered += result.covered
            decided += result.prefetches_issued
        rows.append(
            {
                "num_events": n,
                "events": " + ".join(kind.value for kind in kinds),
                "coverage": arithmetic_mean(coverages),
                "accuracy": min(1.0, covered / decided) if decided else 0.0,
            }
        )
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["num_events", "coverage", "accuracy", "events"],
        title="Fig. 3 — coverage & accuracy vs number of events (avg of workloads)",
        percent_columns=["coverage", "accuracy"],
    )


if __name__ == "__main__":
    print(format_results(run()))
