"""Figure 7: coverage and overprediction of all competing prefetchers.

Per workload and prefetcher: *coverage* (fraction of would-be misses
eliminated), *uncovered* (the remainder), and *overprediction*
(incorrect prefetches normalised to the baseline miss count — footnote 9
of the paper).  Bingo's claim: highest coverage across the board (avg
>63 %, 8 % over the second best) with overprediction on par.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.experiments.common import PAPER_PREFETCHERS, default_params, run_matrix
from repro.sim.engine import SimulationParams
from repro.workloads.registry import WORKLOAD_NAMES


def run(
    workloads: Optional[Sequence[str]] = None,
    prefetchers: Sequence[str] = PAPER_PREFETCHERS,
    params: Optional[SimulationParams] = None,
) -> List[Dict[str, object]]:
    """One row per (workload, prefetcher), plus per-prefetcher averages."""
    workloads = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    params = params if params is not None else default_params()
    matrix = run_matrix(workloads, list(prefetchers), params)
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        for prefetcher in prefetchers:
            result = matrix[workload][prefetcher]
            rows.append(
                {
                    "workload": workload,
                    "prefetcher": prefetcher,
                    "coverage": result.coverage,
                    "uncovered": 1.0 - result.coverage,
                    "overprediction": result.overprediction,
                }
            )
    for prefetcher in prefetchers:
        subset = [row for row in rows if row["prefetcher"] == prefetcher]
        rows.append(
            {
                "workload": "average",
                "prefetcher": prefetcher,
                "coverage": arithmetic_mean([r["coverage"] for r in subset]),
                "uncovered": arithmetic_mean([r["uncovered"] for r in subset]),
                "overprediction": arithmetic_mean(
                    [r["overprediction"] for r in subset]
                ),
            }
        )
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["workload", "prefetcher", "coverage", "uncovered", "overprediction"],
        title="Fig. 7 — coverage / uncovered / overprediction",
        percent_columns=["coverage", "uncovered", "overprediction"],
    )


if __name__ == "__main__":
    print(format_results(run()))
