"""Experiment drivers: one module per paper table/figure.

Every driver exposes a ``run(...)`` function returning plain data
structures (lists of row dicts) plus a ``format_table(rows)`` helper that
prints the same rows/series the paper reports.  The benches under
``benchmarks/`` call these drivers; EXPERIMENTS.md records the outputs
against the paper's numbers.
"""

from repro.experiments.common import (
    EXPERIMENT_SCALE,
    default_params,
    experiment_system,
)

__all__ = ["EXPERIMENT_SCALE", "default_params", "experiment_system"]
