"""Figure 4: redundancy in cascaded TAGE-like history tables.

Run the naive two-table design (``PC+Address`` table + ``PC+Offset``
table, every footprint inserted into both) and measure, per workload,
the fraction of predicting lookups for which both tables offer an
*identical* footprint.  The paper reports 26 % (SAT Solver) to 93 %
(Mix 2) — the redundancy Bingo's unified table eliminates by storing
each footprint once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.core.events import EventKind
from repro.experiments.common import cached_run, default_params
from repro.sim.engine import SimulationParams
from repro.workloads.registry import WORKLOAD_NAMES

_DUAL_EVENTS = (EventKind.PC_ADDRESS, EventKind.PC_OFFSET)


def run(
    workloads: Optional[Sequence[str]] = None,
    params: Optional[SimulationParams] = None,
) -> List[Dict[str, object]]:
    """One row per workload: the redundancy fraction."""
    workloads = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    params = params if params is not None else default_params()
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        result = cached_run(
            workload,
            "multi-event",
            params,
            prefetcher_kwargs={
                "kinds": _DUAL_EVENTS,
                "measure_redundancy": True,
            },
            cache_tag=":redundancy",
        )
        rows.append(
            {
                "workload": workload,
                "redundancy": result.prefetcher_ratio(
                    "redundant_lookups", "redundancy_lookups"
                ),
            }
        )
    rows.append(
        {
            "workload": "average",
            "redundancy": arithmetic_mean([r["redundancy"] for r in rows]),
        }
    )
    return rows


def format_results(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=["workload", "redundancy"],
        title="Fig. 4 — redundancy of cascaded long/short history tables",
        percent_columns=["redundancy"],
    )


if __name__ == "__main__":
    print(format_results(run()))
