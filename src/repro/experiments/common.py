"""Shared configuration for all paper experiments.

The paper simulates 200 K instructions per checkpoint against a fully
*warmed* 8 MB LLC (SimFlex checkpoints).  A pure-Python simulator cannot
warm 8 MB of cache in tractable time, so the canonical experiment setup
scales the hierarchy and the workloads' working sets down by the same
factor (``EXPERIMENT_SCALE = 1/8``): a 1 MB LLC, 16 KB L1Ds, and
working sets an eighth of their paper size.  Capacity *ratios* — and
therefore miss rates, residency lengths, and prefetcher behaviour — are
preserved; DESIGN.md §2 documents this substitution.

Bingo's metadata structures are *not* scaled by default (the paper's
16 K-entry history table is cheap to model); the Fig. 6 sweep covers the
size axis explicitly.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import CacheConfig, SystemConfig
from repro.common.stats import StatGroup
from repro.sim.engine import SimulationParams
from repro.sim.executor import Executor, ResultCache, SimJob
from repro.sim.results import SimResult
from repro.workloads.registry import WORKLOAD_NAMES

#: working sets (and hierarchy) at 1/8 of the paper's size
EXPERIMENT_SCALE = 0.125

#: The six prefetchers of Figs. 7–10, in the paper's bar order.
PAPER_PREFETCHERS = ("bop", "spp", "vldp", "ampm", "sms", "bingo")


def experiment_system(num_cores: int = 4) -> SystemConfig:
    """The scaled-down Table I system used by every experiment."""
    return SystemConfig(
        num_cores=num_cores,
        l1d=CacheConfig(
            size_bytes=16 * 1024, ways=8, hit_latency=4, mshr_entries=8
        ),
        llc=CacheConfig(
            size_bytes=1024 * 1024, ways=16, hit_latency=15, mshr_entries=64
        ),
    )


def is_quick() -> bool:
    """True when ``REPRO_QUICK`` selects the shortened run lengths.

    Quick runs keep every trend but under-train the per-page-history
    prefetchers (they need region generations to accumulate), so benches
    soften winner-takes-all assertions under quick mode.
    """
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


def default_params(quick: Optional[bool] = None) -> SimulationParams:
    """Measurement window: 120 K instr/core after 60 K warm-up.

    Set the environment variable ``REPRO_QUICK=1`` (or pass
    ``quick=True``) for a 4× shorter run — used by CI-style test runs
    where trend direction, not magnitude, is asserted.
    """
    if quick is None:
        quick = is_quick()
    if quick:
        return SimulationParams(
            instructions_per_core=45_000, warmup_instructions=15_000
        )
    return SimulationParams(
        instructions_per_core=180_000, warmup_instructions=60_000
    )


# ---------------------------------------------------------------------------
# Memoised run matrix: Figs. 7, 8, and 9 derive from the same
# (workload x prefetcher) runs, so one bench session pays for each run once.
# Every run routes through a repro.sim.executor.Executor:
#
# * ``REPRO_WORKERS=N`` fans the independent points of a matrix out over
#   N worker processes (results are bit-identical to serial);
# * ``REPRO_CACHE=1`` additionally memoises completed runs on disk
#   (``REPRO_CACHE_DIR`` or ~/.cache/repro) across processes.
#
# EXECUTOR_STATS accumulates hit/miss/run counters for the whole process.
# ---------------------------------------------------------------------------

_RunKey = Tuple[str, str, Tuple[Tuple[str, object], ...], int, int]
_MATRIX_CACHE: Dict[_RunKey, SimResult] = {}

EXECUTOR_STATS = StatGroup("executor")


def env_workers() -> int:
    """Worker-process count for experiment drivers (``REPRO_WORKERS``)."""
    try:
        return max(1, int(os.environ.get("REPRO_WORKERS", "1")))
    except ValueError:
        return 1


def env_cache() -> Optional[ResultCache]:
    """The on-disk result cache, when ``REPRO_CACHE`` enables it."""
    if os.environ.get("REPRO_CACHE", "") in ("", "0"):
        return None
    return ResultCache()


def experiment_executor(
    workers: Optional[int] = None, cache: Optional[ResultCache] = None
) -> Executor:
    """An executor wired to the env knobs and the shared stat group."""
    return Executor(
        workers=workers if workers is not None else env_workers(),
        cache=cache if cache is not None else env_cache(),
        stats=EXECUTOR_STATS,
    )


def _job(
    workload: str,
    prefetcher: str,
    params: SimulationParams,
    prefetcher_kwargs: Optional[dict] = None,
) -> SimJob:
    return SimJob.build(
        workload,
        prefetcher=prefetcher,
        system=experiment_system(),
        instructions_per_core=params.instructions_per_core,
        warmup_instructions=params.warmup_instructions,
        scale=EXPERIMENT_SCALE,
        prefetcher_kwargs=prefetcher_kwargs,
    )


def _memo_key(
    workload: str,
    prefetcher: str,
    params: SimulationParams,
    kwargs: dict,
    cache_tag: str,
) -> _RunKey:
    return (
        workload,
        prefetcher + cache_tag,
        tuple(sorted(kwargs.items())),
        params.instructions_per_core,
        params.warmup_instructions,
    )


def cached_run(
    workload: str,
    prefetcher: str,
    params: Optional[SimulationParams] = None,
    prefetcher_kwargs: Optional[dict] = None,
    cache_tag: str = "",
) -> SimResult:
    """Run (or recall) one experiment-config simulation.

    All experiment drivers funnel through here so identical runs are
    shared within a process.  ``cache_tag`` disambiguates callers that
    pass non-default prefetcher instances or semantics.
    """
    params = params if params is not None else default_params()
    kwargs = prefetcher_kwargs or {}
    key = _memo_key(workload, prefetcher, params, kwargs, cache_tag)
    if key not in _MATRIX_CACHE:
        _MATRIX_CACHE[key] = experiment_executor().run_job(
            _job(workload, prefetcher, params, kwargs or None)
        )
    return _MATRIX_CACHE[key]


def run_matrix(
    workloads: Optional[Sequence[str]] = None,
    prefetchers: Optional[Sequence[str]] = None,
    params: Optional[SimulationParams] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, Dict[str, SimResult]]:
    """The Figs. 7–9 matrix: every workload under every prefetcher + baseline.

    All missing cells are submitted to the executor as one batch, so with
    ``workers > 1`` (or ``REPRO_WORKERS``) the whole matrix fans out.
    """
    workloads = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    prefetchers = (
        list(prefetchers) if prefetchers is not None else list(PAPER_PREFETCHERS)
    )
    params = params if params is not None else default_params()

    cells = [
        (workload, prefetcher)
        for workload in workloads
        for prefetcher in ["none"] + [p for p in prefetchers if p != "none"]
    ]
    missing: List[Tuple[str, str]] = [
        cell
        for cell in cells
        if _memo_key(cell[0], cell[1], params, {}, "") not in _MATRIX_CACHE
    ]
    if missing:
        executor = experiment_executor(workers=workers, cache=cache)
        jobs = [_job(workload, prefetcher, params) for workload, prefetcher in missing]
        for (workload, prefetcher), result in zip(
            missing, executor.run_jobs(jobs)
        ):
            _MATRIX_CACHE[
                _memo_key(workload, prefetcher, params, {}, "")
            ] = result

    results: Dict[str, Dict[str, SimResult]] = {}
    for workload in workloads:
        runs = {
            "none": _MATRIX_CACHE[_memo_key(workload, "none", params, {}, "")]
        }
        for prefetcher in prefetchers:
            runs[prefetcher] = _MATRIX_CACHE[
                _memo_key(workload, prefetcher, params, {}, "")
            ]
        results[workload] = runs
    return results
