"""Shared configuration for all paper experiments.

The paper simulates 200 K instructions per checkpoint against a fully
*warmed* 8 MB LLC (SimFlex checkpoints).  A pure-Python simulator cannot
warm 8 MB of cache in tractable time, so the canonical experiment setup
scales the hierarchy and the workloads' working sets down by the same
factor (``EXPERIMENT_SCALE = 1/8``): a 1 MB LLC, 16 KB L1Ds, and
working sets an eighth of their paper size.  Capacity *ratios* — and
therefore miss rates, residency lengths, and prefetcher behaviour — are
preserved; DESIGN.md §2 documents this substitution.

Bingo's metadata structures are *not* scaled by default (the paper's
16 K-entry history table is cheap to model); the Fig. 6 sweep covers the
size axis explicitly.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple

from repro.common.config import CacheConfig, SystemConfig
from repro.sim.engine import SimulationParams
from repro.sim.results import SimResult
from repro.sim.runner import run_simulation
from repro.workloads.registry import WORKLOAD_NAMES

#: working sets (and hierarchy) at 1/8 of the paper's size
EXPERIMENT_SCALE = 0.125

#: The six prefetchers of Figs. 7–10, in the paper's bar order.
PAPER_PREFETCHERS = ("bop", "spp", "vldp", "ampm", "sms", "bingo")


def experiment_system(num_cores: int = 4) -> SystemConfig:
    """The scaled-down Table I system used by every experiment."""
    return SystemConfig(
        num_cores=num_cores,
        l1d=CacheConfig(
            size_bytes=16 * 1024, ways=8, hit_latency=4, mshr_entries=8
        ),
        llc=CacheConfig(
            size_bytes=1024 * 1024, ways=16, hit_latency=15, mshr_entries=64
        ),
    )


def is_quick() -> bool:
    """True when ``REPRO_QUICK`` selects the shortened run lengths.

    Quick runs keep every trend but under-train the per-page-history
    prefetchers (they need region generations to accumulate), so benches
    soften winner-takes-all assertions under quick mode.
    """
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


def default_params(quick: Optional[bool] = None) -> SimulationParams:
    """Measurement window: 120 K instr/core after 60 K warm-up.

    Set the environment variable ``REPRO_QUICK=1`` (or pass
    ``quick=True``) for a 4× shorter run — used by CI-style test runs
    where trend direction, not magnitude, is asserted.
    """
    if quick is None:
        quick = is_quick()
    if quick:
        return SimulationParams(
            instructions_per_core=45_000, warmup_instructions=15_000
        )
    return SimulationParams(
        instructions_per_core=180_000, warmup_instructions=60_000
    )


# ---------------------------------------------------------------------------
# Memoised run matrix: Figs. 7, 8, and 9 derive from the same
# (workload x prefetcher) runs, so one bench session pays for each run once.
# ---------------------------------------------------------------------------

_RunKey = Tuple[str, str, Tuple[Tuple[str, object], ...], int, int]
_MATRIX_CACHE: Dict[_RunKey, SimResult] = {}


def cached_run(
    workload: str,
    prefetcher: str,
    params: Optional[SimulationParams] = None,
    prefetcher_kwargs: Optional[dict] = None,
    cache_tag: str = "",
) -> SimResult:
    """Run (or recall) one experiment-config simulation.

    All experiment drivers funnel through here so identical runs are
    shared within a process.  ``cache_tag`` disambiguates callers that
    pass non-default prefetcher instances or semantics.
    """
    params = params if params is not None else default_params()
    kwargs = prefetcher_kwargs or {}
    key = (
        workload,
        prefetcher + cache_tag,
        tuple(sorted(kwargs.items())),
        params.instructions_per_core,
        params.warmup_instructions,
    )
    if key not in _MATRIX_CACHE:
        _MATRIX_CACHE[key] = run_simulation(
            workload,
            prefetcher=prefetcher,
            system=experiment_system(),
            instructions_per_core=params.instructions_per_core,
            warmup_instructions=params.warmup_instructions,
            scale=EXPERIMENT_SCALE,
            prefetcher_kwargs=kwargs or None,
        )
    return _MATRIX_CACHE[key]


def run_matrix(
    workloads: Optional[Sequence[str]] = None,
    prefetchers: Optional[Sequence[str]] = None,
    params: Optional[SimulationParams] = None,
) -> Dict[str, Dict[str, SimResult]]:
    """The Figs. 7–9 matrix: every workload under every prefetcher + baseline."""
    workloads = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    prefetchers = (
        list(prefetchers) if prefetchers is not None else list(PAPER_PREFETCHERS)
    )
    results: Dict[str, Dict[str, SimResult]] = {}
    for workload in workloads:
        runs = {"none": cached_run(workload, "none", params)}
        for prefetcher in prefetchers:
            runs[prefetcher] = cached_run(workload, prefetcher, params)
        results[workload] = runs
    return results
