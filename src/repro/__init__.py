"""repro — a reproduction of the Bingo Spatial Data Prefetcher (HPCA 2019).

The package is a complete trace-driven multi-core memory-hierarchy
simulator plus a zoo of spatial data prefetchers, built to regenerate
every table and figure of the paper's evaluation.  Quick start::

    from repro import run_simulation, speedup

    baseline = run_simulation("em3d", prefetcher="none")
    bingo = run_simulation("em3d", prefetcher="bingo")
    print(f"coverage={bingo.coverage:.0%}  speedup={speedup(bingo, baseline):.2f}x")

Public surface:

* :func:`repro.sim.runner.run_simulation` / ``compare_prefetchers`` —
  run workloads under prefetchers;
* :mod:`repro.workloads` — Table II's workload suite by name;
* :mod:`repro.prefetchers` — the baseline zoo (``make_prefetcher``);
* :mod:`repro.core` — Bingo itself and its history structures;
* :mod:`repro.experiments` — one driver per paper figure/table;
* :mod:`repro.obs` — decision traces, interval timelines, profiling
  (``run_simulation(..., obs=ObservabilityConfig(trace_path="t.jsonl"))``).
"""

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    SystemConfig,
)
from repro.core.bingo import BingoPrefetcher
from repro.obs.config import ObservabilityConfig
from repro.prefetchers.registry import available_prefetchers, make_prefetcher
from repro.sim.results import SimResult, speedup
from repro.sim.runner import compare_prefetchers, run_simulation
from repro.workloads.registry import available_workloads, make_workload

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "DramConfig",
    "SystemConfig",
    "ObservabilityConfig",
    "BingoPrefetcher",
    "available_prefetchers",
    "make_prefetcher",
    "SimResult",
    "speedup",
    "compare_prefetchers",
    "run_simulation",
    "available_workloads",
    "make_workload",
    "__version__",
]
