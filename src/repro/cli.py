"""The ``bingo-sim`` command-line interface.

Subcommands:

* ``list`` — available workloads and prefetchers.
* ``run`` — one workload under one prefetcher; prints the summary.
* ``compare`` — one workload under several prefetchers + baseline.
* ``experiment`` — regenerate a paper table/figure by id (e.g. ``fig8``).
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

from repro.analysis.report import format_table
from repro.experiments.common import (
    EXPERIMENT_SCALE,
    PAPER_PREFETCHERS,
    default_params,
    experiment_system,
)
from repro.prefetchers.registry import available_prefetchers
from repro.sim.results import speedup
from repro.sim.runner import compare_prefetchers, run_simulation
from repro.workloads.registry import available_workloads

#: experiment id -> driver module (each has run()/format_results())
EXPERIMENTS = {
    "table1": "repro.experiments.table1_config",
    "table2": "repro.experiments.table2_mpki",
    "fig2": "repro.experiments.fig2_events",
    "fig3": "repro.experiments.fig3_num_events",
    "fig4": "repro.experiments.fig4_redundancy",
    "fig6": "repro.experiments.fig6_storage",
    "fig7": "repro.experiments.fig7_coverage",
    "fig8": "repro.experiments.fig8_performance",
    "fig9": "repro.experiments.fig9_density",
    "fig10": "repro.experiments.fig10_isodegree",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bingo-sim",
        description="Bingo spatial prefetcher reproduction (HPCA 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, prefetchers, experiments")

    run_p = sub.add_parser("run", help="run one workload under one prefetcher")
    run_p.add_argument("--workload", "-w", required=True)
    run_p.add_argument("--prefetcher", "-p", default="bingo")
    run_p.add_argument("--instructions", type=int, default=None,
                       help="instructions per core (default: experiment params)")
    run_p.add_argument("--warmup", type=int, default=None)
    run_p.add_argument("--seed", type=int, default=1234)
    run_p.add_argument("--baseline", action="store_true",
                       help="also run the no-prefetcher baseline for speedup")

    cmp_p = sub.add_parser("compare", help="compare prefetchers on a workload")
    cmp_p.add_argument("--workload", "-w", required=True)
    cmp_p.add_argument("--prefetchers", "-p", nargs="+",
                       default=list(PAPER_PREFETCHERS))
    cmp_p.add_argument("--instructions", type=int, default=None)
    cmp_p.add_argument("--warmup", type=int, default=None)
    cmp_p.add_argument("--seed", type=int, default=1234)

    exp_p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp_p.add_argument("id", choices=sorted(EXPERIMENTS))
    exp_p.add_argument("--export", metavar="PATH", default=None,
                       help="also write the rows to PATH (.csv or .json)")
    return parser


def _params(args) -> tuple:
    params = default_params()
    instructions = args.instructions or params.instructions_per_core
    warmup = args.warmup if args.warmup is not None else params.warmup_instructions
    return instructions, warmup


def _cmd_list() -> int:
    print("workloads:   ", " ".join(available_workloads()))
    print("prefetchers: ", " ".join(available_prefetchers()))
    print("experiments: ", " ".join(sorted(EXPERIMENTS)))
    return 0


def _cmd_run(args) -> int:
    instructions, warmup = _params(args)
    kwargs = dict(
        system=experiment_system(),
        instructions_per_core=instructions,
        warmup_instructions=warmup,
        seed=args.seed,
        scale=EXPERIMENT_SCALE,
    )
    result = run_simulation(args.workload, prefetcher=args.prefetcher, **kwargs)
    rows = [dict(metric=k, value=round(v, 4)) for k, v in result.summary().items()]
    if args.baseline and args.prefetcher != "none":
        baseline = run_simulation(args.workload, prefetcher="none", **kwargs)
        rows.append(dict(metric="speedup", value=round(speedup(result, baseline), 4)))
    print(format_table(rows, title=f"{args.workload} / {args.prefetcher}"))
    return 0


def _cmd_compare(args) -> int:
    instructions, warmup = _params(args)
    results = compare_prefetchers(
        args.workload,
        args.prefetchers,
        system=experiment_system(),
        instructions_per_core=instructions,
        warmup_instructions=warmup,
        seed=args.seed,
        scale=EXPERIMENT_SCALE,
    )
    baseline = results["none"]
    rows = []
    for name, result in results.items():
        rows.append(
            {
                "prefetcher": name,
                "speedup": round(speedup(result, baseline), 3),
                "coverage": result.coverage,
                "accuracy": result.accuracy,
                "overprediction": result.overprediction,
            }
        )
    print(
        format_table(
            rows,
            title=f"prefetcher comparison on {args.workload}",
            percent_columns=["coverage", "accuracy", "overprediction"],
        )
    )
    return 0


def _cmd_experiment(experiment_id: str, export: Optional[str] = None) -> int:
    module = importlib.import_module(EXPERIMENTS[experiment_id])
    rows = module.run()
    print(module.format_results(rows))
    if export:
        from repro.analysis.export import export_rows

        path = export_rows(export, rows, experiment=experiment_id)
        print(f"\nrows exported to {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    return _cmd_experiment(args.id, args.export)


if __name__ == "__main__":
    sys.exit(main())
