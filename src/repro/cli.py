"""The ``bingo-sim`` command-line interface.

Subcommands:

* ``list`` — available workloads and prefetchers.
* ``run`` — one workload under one prefetcher; prints the summary.
  ``--trace out.jsonl`` records the decision/event trace, ``--timeline N``
  prints per-phase IPC/MPKI/coverage curves, ``--profile`` shows the
  simulator's own hot spots (see ``docs/observability.md``).
* ``compare`` — one workload under several prefetchers + baseline.
* ``sweep`` — one (workload, prefetcher) across values of one parameter,
  fanned out over ``--workers`` processes with on-disk result caching
  (``--no-cache`` to disable, ``REPRO_CACHE_DIR`` to relocate);
  ``--check`` runs every point under the strict invariant checker and
  bypasses the cache.
* ``experiment`` — regenerate a paper table/figure by id (e.g. ``fig8``;
  ``--workers N`` parallelises the underlying run matrix), or — with
  ``--space`` — submit a parameter *space* to a running daemon for
  adaptive search: successive-halving rounds screen the grid with cheap
  short traces and promote only the top fraction to full length
  (see ``docs/service.md``).
* ``check`` — differential correctness harness: replays a (workload ×
  prefetcher) matrix against untimed reference models plus the runtime
  invariant checker and reports the first divergence, if any (see
  ``docs/correctness.md``).
* ``serve`` — run the simulation daemon: async job queue + HTTP API
  with shared caches, retries, timeouts, and graceful SIGTERM drain
  (see ``docs/service.md``).
* ``submit`` — send one job to a running daemon (``--wait`` polls it to
  completion and prints the summary).
* ``jobs`` — list a daemon's jobs, show one record, or (``--metrics``)
  dump its counters.  ``$REPRO_SERVE_URL`` overrides the default URL.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

from repro.analysis.report import format_table
from repro.experiments.common import (
    EXPERIMENT_SCALE,
    PAPER_PREFETCHERS,
    default_params,
    experiment_system,
)
from repro.memsys.replacement import available_replacements
from repro.prefetchers.registry import available_prefetchers
from repro.sim.results import speedup
from repro.sim.runner import compare_prefetchers, run_simulation
from repro.workloads.registry import available_workloads

#: experiment id -> driver module (each has run()/format_results())
EXPERIMENTS = {
    "table1": "repro.experiments.table1_config",
    "table2": "repro.experiments.table2_mpki",
    "fig2": "repro.experiments.fig2_events",
    "fig3": "repro.experiments.fig3_num_events",
    "fig4": "repro.experiments.fig4_redundancy",
    "fig6": "repro.experiments.fig6_storage",
    "fig7": "repro.experiments.fig7_coverage",
    "fig8": "repro.experiments.fig8_performance",
    "fig9": "repro.experiments.fig9_density",
    "fig10": "repro.experiments.fig10_isodegree",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bingo-sim",
        description="Bingo spatial prefetcher reproduction (HPCA 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, prefetchers, experiments")

    run_p = sub.add_parser("run", help="run one workload under one prefetcher")
    run_p.add_argument("--workload", "-w", required=True)
    run_p.add_argument("--prefetcher", "-p", default="bingo")
    run_p.add_argument("--instructions", type=int, default=None,
                       help="instructions per core (default: experiment params)")
    run_p.add_argument("--warmup", type=int, default=None)
    run_p.add_argument("--seed", type=int, default=1234)
    run_p.add_argument("--baseline", action="store_true",
                       help="also run the no-prefetcher baseline for speedup")
    run_p.add_argument("--trace", metavar="PATH", default=None,
                       help="write a JSONL event trace (prefetch issues, "
                            "demand hits/misses, vote decisions, evictions)")
    run_p.add_argument("--trace-limit", type=int, default=0, metavar="N",
                       help="stop tracing after N events (default: all)")
    run_p.add_argument("--timeline", type=int, default=0, metavar="N",
                       help="sample per-phase IPC/MPKI/coverage every N "
                            "retired instructions and print the curve")
    run_p.add_argument("--timeline-export", metavar="PATH", default=None,
                       help="also write the timeline rows to PATH "
                            "(.csv or .json; requires --timeline)")
    run_p.add_argument("--profile", action="store_true",
                       help="run under cProfile and print the hottest "
                            "functions (simulator performance debugging)")
    run_p.add_argument("--no-compile", action="store_true",
                       help="replay the live workload generators instead "
                            "of a packed compiled trace (results are "
                            "identical; see docs/performance.md)")
    run_p.add_argument("--no-vectorized", action="store_true",
                       help="disable the NumPy batch-replay engine tier "
                            "(results are identical; see "
                            "docs/performance.md)")
    run_p.add_argument("--replacement", default="lru",
                       choices=available_replacements(),
                       help="LLC replacement policy (default: lru; 'opt' "
                            "is the Belady oracle and needs the compiled "
                            "trace, i.e. not --no-compile)")

    cmp_p = sub.add_parser("compare", help="compare prefetchers on a workload")
    cmp_p.add_argument("--workload", "-w", required=True)
    cmp_p.add_argument("--prefetchers", "-p", nargs="+",
                       default=list(PAPER_PREFETCHERS))
    cmp_p.add_argument("--instructions", type=int, default=None)
    cmp_p.add_argument("--warmup", type=int, default=None)
    cmp_p.add_argument("--seed", type=int, default=1234)
    cmp_p.add_argument("--workers", type=int, default=1,
                       help="worker processes for the independent runs")
    cmp_p.add_argument("--no-compile", action="store_true",
                       help="replay the live workload generators instead "
                            "of a shared packed compiled trace")
    cmp_p.add_argument("--replacement", default="lru",
                       choices=available_replacements(),
                       help="LLC replacement policy for every run "
                            "(default: lru)")

    sweep_p = sub.add_parser(
        "sweep", help="sweep one prefetcher parameter over several values"
    )
    sweep_p.add_argument("--workload", "-w", required=True)
    sweep_p.add_argument("--prefetcher", "-p", default="bingo")
    sweep_p.add_argument("--parameter", required=True,
                         help="prefetcher keyword to vary "
                              "(e.g. history_entries, degree)")
    sweep_p.add_argument("--values", nargs="+", required=True,
                         help="values to sweep (parsed as int/float when "
                              "possible)")
    sweep_p.add_argument("--instructions", type=int, default=None)
    sweep_p.add_argument("--warmup", type=int, default=None)
    sweep_p.add_argument("--seed", type=int, default=1234)
    sweep_p.add_argument("--workers", type=int, default=1,
                         help="worker processes for the sweep points")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="skip the on-disk result cache "
                              "($REPRO_CACHE_DIR or ~/.cache/repro)")
    sweep_p.add_argument("--check", action="store_true",
                         help="run every sweep point under the strict "
                              "runtime invariant checker (bypasses the "
                              "result cache)")
    sweep_p.add_argument("--no-compile", action="store_true",
                         help="replay the live workload generators instead "
                              "of a shared packed compiled trace (the "
                              "compiled-trace cache lives next to the "
                              "result cache under $REPRO_CACHE_DIR)")
    sweep_p.add_argument("--no-vectorized", action="store_true",
                         help="disable the NumPy batch-replay engine tier "
                              "for every sweep point")
    sweep_p.add_argument("--replacement", default="lru",
                         choices=available_replacements(),
                         help="LLC replacement policy for every sweep "
                              "point (default: lru)")

    check_p = sub.add_parser(
        "check",
        help="differential correctness check against reference models",
    )
    check_p.add_argument("--workload", "-w", action="append", default=None,
                         dest="workloads", metavar="NAME",
                         help="workload to check; repeatable (default: "
                              "streaming, em3d, data_serving)")
    check_p.add_argument("--prefetcher", "-p", action="append", default=None,
                         dest="prefetchers", metavar="NAME",
                         help="prefetcher to check; repeatable (default: "
                              "bingo, sms, bop, spp)")
    check_p.add_argument("--instructions", type=int, default=8000,
                         help="instructions per core (default: 8000)")
    check_p.add_argument("--warmup", type=int, default=1000)
    check_p.add_argument("--seed", type=int, default=11)
    check_p.add_argument("--scale", type=float, default=0.02,
                         help="workload footprint scale (default: 0.02)")
    check_p.add_argument("--compiled", action="store_true",
                         help="check the *compiled-trace* replay path: "
                              "the differential harness consumes packed "
                              "traces instead of live generators")
    check_p.add_argument("--vectorized", action="store_true",
                         help="check the NumPy batch-replay tier: the "
                              "simulated run replays vectorized (implies "
                              "--compiled) and must still match the "
                              "reference models event for event")
    check_p.add_argument("--replacement", default="lru",
                         choices=available_replacements(),
                         help="LLC replacement policy for the checked "
                              "runs; the untimed reference caches track "
                              "residency from the live event stream, so "
                              "any policy can be checked (default: lru)")

    from repro.serve.api import DEFAULT_PORT

    serve_p = sub.add_parser(
        "serve", help="run the simulation service daemon (docs/service.md)"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve_p.add_argument("--workers", type=int, default=2,
                         help="parallel worker slots (each its own process)")
    serve_p.add_argument("--timeout", type=float, default=300.0,
                         help="per-job wall-clock budget in seconds "
                              "(0 disables; overdue workers are killed)")
    serve_p.add_argument("--retries", type=int, default=3,
                         help="max executions per job (crashes/timeouts "
                              "retry with exponential backoff)")
    serve_p.add_argument("--state-dir", default=None, metavar="DIR",
                         help="persist the pending queue here on SIGTERM "
                              "and restore it on the next start")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="disable the shared on-disk result cache")
    serve_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result cache root (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro); the "
                              "cluster shard ring lives under it too")
    serve_p.add_argument("--max-queue-depth", type=int, default=0,
                         help="admission bound on pending jobs: beyond "
                              "it POST /jobs answers 429 + Retry-After "
                              "(0 = unbounded, the default)")
    serve_p.add_argument("--lease-ttl", type=float, default=30.0,
                         help="cluster lease lifetime in seconds; a "
                              "worker silent this long loses its jobs "
                              "to the reclaim path")
    serve_p.add_argument("--no-steal", action="store_true",
                         help="forbid idle workers from leasing out of "
                              "the backoff-gated retry backlog")
    serve_p.add_argument("--quiet", action="store_true",
                         help="suppress startup/drain log lines")

    worker_p = sub.add_parser(
        "worker",
        help="run a cluster worker agent against a frontend daemon "
             "(docs/service.md, §Cluster)",
    )
    worker_p.add_argument("--connect", required=True, metavar="URL",
                          help="frontend base URL, e.g. "
                               f"http://127.0.0.1:{DEFAULT_PORT}")
    worker_p.add_argument("--node-id", default=None,
                          help="stable node name (default: "
                               "<host>-<pid>-<nonce>)")
    worker_p.add_argument("--capacity", type=int, default=1,
                          help="concurrent leases to execute (each its "
                               "own process slot)")
    worker_p.add_argument("--timeout", type=float, default=300.0,
                          help="per-job wall-clock budget in seconds "
                               "(0 disables)")
    worker_p.add_argument("--no-cache", action="store_true",
                          help="disable the node-local result cache tier")
    worker_p.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="node-local result cache root (default: "
                               "$REPRO_CACHE_DIR or ~/.cache/repro)")
    worker_p.add_argument("--quiet", action="store_true",
                          help="suppress startup/stop log lines")

    default_url = f"http://127.0.0.1:{DEFAULT_PORT}"
    submit_p = sub.add_parser(
        "submit", help="submit a job to a running service daemon"
    )
    submit_p.add_argument("--workload", "-w", required=True)
    submit_p.add_argument("--prefetcher", "-p", default="bingo")
    submit_p.add_argument("--instructions", type=int, default=None)
    submit_p.add_argument("--warmup", type=int, default=None)
    submit_p.add_argument("--seed", type=int, default=1234)
    submit_p.add_argument("--priority", type=int, default=0,
                          help="higher runs sooner (default 0)")
    submit_p.add_argument("--url", default=None,
                          help=f"service base URL (default: "
                               f"$REPRO_SERVE_URL or {default_url})")
    submit_p.add_argument("--wait", action="store_true",
                          help="poll until the job finishes and print "
                               "the result summary")
    submit_p.add_argument("--wait-timeout", type=float, default=600.0)

    jobs_p = sub.add_parser(
        "jobs", help="inspect a running service daemon's jobs"
    )
    jobs_p.add_argument("id", nargs="?", default=None,
                        help="job id to show in full (default: list all)")
    jobs_p.add_argument("--url", default=None,
                        help=f"service base URL (default: "
                             f"$REPRO_SERVE_URL or {default_url})")
    jobs_p.add_argument("--metrics", action="store_true",
                        help="print the service's counters instead")

    exp_p = sub.add_parser(
        "experiment",
        help="regenerate a paper table/figure, or run an adaptive "
             "search on a daemon (--space)",
    )
    exp_p.add_argument("id", nargs="?", default=None,
                       help="paper table/figure id to regenerate "
                            f"({', '.join(sorted(EXPERIMENTS))}); "
                            "omit when using --space")
    exp_p.add_argument("--export", metavar="PATH", default=None,
                       help="also write the rows to PATH (.csv or .json)")
    exp_p.add_argument("--workers", type=int, default=None,
                       help="worker processes for the run matrix "
                            "(default: $REPRO_WORKERS or 1)")
    exp_p.add_argument("--space", metavar="JSON|@FILE", default=None,
                       help="adaptive search: a parameter-space object "
                            "(inline JSON, or @path to a JSON file) "
                            "submitted to a running daemon and screened "
                            "by successive halving (docs/service.md)")
    exp_p.add_argument("--objective", default="ipc",
                       help="metric to optimise: ipc, coverage, accuracy, "
                            "mpki, overprediction (default: ipc)")
    exp_p.add_argument("--screen", type=int, default=2000,
                       help="instructions per core for the cheapest "
                            "screening rung (default: 2000)")
    exp_p.add_argument("--full", type=int, default=20000,
                       help="instructions per core for the final "
                            "full-length rung (default: 20000)")
    exp_p.add_argument("--eta", type=float, default=2.0,
                       help="halving rate: budgets grow and survivors "
                            "shrink by this factor per round (default: 2)")
    exp_p.add_argument("--cutoff", type=float, default=None,
                       help="absolute early-stop bar on the objective; "
                            "candidates failing it are dropped even "
                            "inside the keep fraction")
    exp_p.add_argument("--priority", type=int, default=0,
                       help="queue priority for the experiment's jobs")
    exp_p.add_argument("--url", default=None,
                       help=f"service base URL (default: "
                            f"$REPRO_SERVE_URL or {default_url})")
    exp_p.add_argument("--no-wait", action="store_true",
                       help="submit and print the experiment id without "
                            "polling it to completion")
    exp_p.add_argument("--wait-timeout", type=float, default=1800.0)
    return parser


def _params(args) -> tuple:
    params = default_params()
    instructions = args.instructions or params.instructions_per_core
    warmup = args.warmup if args.warmup is not None else params.warmup_instructions
    return instructions, warmup


def _cmd_list() -> int:
    print("workloads:   ", " ".join(available_workloads()))
    print("prefetchers: ", " ".join(available_prefetchers()))
    print("replacement: ", " ".join(available_replacements()))
    print("experiments: ", " ".join(sorted(EXPERIMENTS)))
    return 0


def _cmd_run(args) -> int:
    from repro.obs import ObservabilityConfig, profile_call

    if args.timeline_export and not args.timeline:
        print("error: --timeline-export requires --timeline N", file=sys.stderr)
        return 2
    instructions, warmup = _params(args)
    obs = ObservabilityConfig(
        trace_path=args.trace,
        trace_limit=args.trace_limit,
        timeline_interval=args.timeline,
    )
    kwargs = dict(
        system=experiment_system(),
        instructions_per_core=instructions,
        warmup_instructions=warmup,
        seed=args.seed,
        scale=EXPERIMENT_SCALE,
        compile=not args.no_compile,
        vectorized=not args.no_vectorized,
        replacement=args.replacement,
    )

    def simulate():
        return run_simulation(
            args.workload, prefetcher=args.prefetcher, obs=obs, **kwargs
        )

    result = profile_call(simulate, top=15) if args.profile else simulate()
    rows = [dict(metric=k, value=round(v, 4)) for k, v in result.summary().items()]
    if args.baseline and args.prefetcher != "none":
        baseline = run_simulation(args.workload, prefetcher="none", **kwargs)
        rows.append(dict(metric="speedup", value=round(speedup(result, baseline), 4)))
    print(format_table(rows, title=f"{args.workload} / {args.prefetcher}"))

    if args.timeline:
        curve_rows = [
            {
                metric: round(number, 4)
                for metric, number in row.items()
                if metric in ("instructions", "ipc", "mpki", "coverage",
                              "accuracy", "prefetches_issued")
            }
            for row in result.timeline_curves()
        ]
        print()
        print(
            format_table(
                curve_rows,
                title=f"timeline (every {args.timeline} instructions)",
            )
        )
        if args.timeline_export:
            from repro.analysis.export import export_timeline

            path = export_timeline(args.timeline_export, result)
            print(f"\ntimeline exported to {path}")
    if args.trace:
        with open(args.trace, "r", encoding="utf-8") as fh:
            events = sum(1 for line in fh if line.strip())
        print(f"\ntrace: {events} events written to {args.trace}")
    return 0


def _cmd_compare(args) -> int:
    instructions, warmup = _params(args)
    results = compare_prefetchers(
        args.workload,
        args.prefetchers,
        system=experiment_system(),
        instructions_per_core=instructions,
        warmup_instructions=warmup,
        seed=args.seed,
        scale=EXPERIMENT_SCALE,
        workers=args.workers,
        compile=not args.no_compile,
        replacement=args.replacement,
    )
    baseline = results["none"]
    rows = []
    for name, result in results.items():
        rows.append(
            {
                "prefetcher": name,
                "speedup": round(speedup(result, baseline), 3),
                "coverage": result.coverage,
                "accuracy": result.accuracy,
                "overprediction": result.overprediction,
            }
        )
    print(
        format_table(
            rows,
            title=f"prefetcher comparison on {args.workload}",
            percent_columns=["coverage", "accuracy", "overprediction"],
        )
    )
    return 0


def _parse_value(text: str):
    """CLI sweep values: int where possible, then float, else string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _cmd_sweep(args) -> int:
    from repro.sim.executor import Executor, ResultCache
    from repro.sim.sweep import sweep_prefetcher_parameter

    instructions, warmup = _params(args)
    values = [_parse_value(text) for text in args.values]
    executor = Executor(
        workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
        check=args.check,
    )
    results = sweep_prefetcher_parameter(
        args.workload,
        prefetcher=args.prefetcher,
        parameter=args.parameter,
        values=values,
        system=experiment_system(),
        instructions_per_core=instructions,
        warmup_instructions=warmup,
        seed=args.seed,
        scale=EXPERIMENT_SCALE,
        executor=executor,
        compile=not args.no_compile,
        vectorized=not args.no_vectorized,
        replacement=args.replacement,
    )
    rows = []
    for value, result in results.items():
        row = {args.parameter: value}
        row.update(
            (metric, round(number, 4))
            for metric, number in result.summary().items()
        )
        rows.append(row)
    print(
        format_table(
            rows,
            title=(
                f"{args.prefetcher} on {args.workload}: "
                f"sweep of {args.parameter}"
            ),
        )
    )
    stats = executor.stats
    print(
        f"\nexecutor: {stats.get('jobs')} jobs, "
        f"{stats.get('cache_hits')} cache hits, "
        f"{stats.get('executed')} executed "
        f"({stats.get('run_seconds'):.2f}s, {args.workers} workers)"
    )
    compile_hits = stats.get("trace_compile_hits")
    compile_misses = stats.get("trace_compile_misses")
    if compile_hits or compile_misses:
        print(
            f"compiled traces: {compile_misses:.0f} compiled, "
            f"{compile_hits:.0f} cache hits"
        )
    return 0


def _cmd_check(args) -> int:
    from repro.check import run_check

    workloads = args.workloads or ["streaming", "em3d", "data_serving"]
    prefetchers = args.prefetchers or ["bingo", "sms", "bop", "spp"]
    failures = 0
    for workload in workloads:
        for prefetcher in prefetchers:
            report = run_check(
                workload,
                prefetcher=prefetcher,
                instructions_per_core=args.instructions,
                warmup_instructions=args.warmup,
                seed=args.seed,
                scale=args.scale,
                compile=args.compiled or args.vectorized
                or args.replacement == "opt",
                vectorized=args.vectorized,
                replacement=args.replacement,
            )
            print(report.summary())
            if not report.ok:
                failures += 1
    total = len(workloads) * len(prefetchers)
    if failures:
        print(f"\nFAIL: {failures}/{total} checks diverged", file=sys.stderr)
        return 1
    print(f"\nOK: {total} checks, no divergences")
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import RetryPolicy, ServiceConfig, run_server

    config = ServiceConfig(
        workers=args.workers,
        job_timeout=args.timeout,
        retry=RetryPolicy(max_attempts=max(1, args.retries)),
        state_dir=args.state_dir,
        cache_dir=None if args.no_cache else (args.cache_dir or ""),
        max_queue_depth=max(0, args.max_queue_depth),
        lease_ttl=args.lease_ttl,
        steal=not args.no_steal,
    )
    run_server(
        config,
        host=args.host,
        port=args.port,
        verbose=not args.quiet,
    )
    return 0


def _cmd_worker(args) -> int:
    from repro.serve import ServiceUnavailable, WireVersionError, run_worker

    try:
        run_worker(
            args.connect,
            node_id=args.node_id,
            capacity=max(1, args.capacity),
            job_timeout=args.timeout,
            cache_dir=None if args.no_cache else (args.cache_dir or ""),
            verbose=not args.quiet,
        )
    except (WireVersionError, ServiceUnavailable, SystemExit) as exc:
        print(f"error: worker stopped: {exc}", file=sys.stderr)
        return 1
    return 0


def _serve_url(args) -> str:
    import os

    from repro.serve.api import DEFAULT_PORT

    if args.url:
        return args.url
    return os.environ.get(
        "REPRO_SERVE_URL", f"http://127.0.0.1:{DEFAULT_PORT}"
    )


def _cmd_submit(args) -> int:
    from repro.serve import ServiceClient, ServiceError

    instructions, warmup = _params(args)
    spec = {
        "workload": args.workload,
        "prefetcher": args.prefetcher,
        "instructions": instructions,
        "warmup": warmup,
        "seed": args.seed,
        "scale": EXPERIMENT_SCALE,
        "system": "experiment",
    }
    client = ServiceClient(_serve_url(args))
    try:
        accepted = client.submit(spec, priority=args.priority)
    except (ServiceError, OSError) as exc:
        print(f"error: submit failed: {exc}", file=sys.stderr)
        return 1
    dedup = " (deduplicated onto in-flight job)" if accepted["deduped"] else ""
    print(f"job {accepted['id']} {accepted['state']}{dedup}")
    if not args.wait:
        return 0
    try:
        record = client.wait(accepted["id"], timeout=args.wait_timeout)
    except (ServiceError, OSError, TimeoutError) as exc:
        print(f"error: wait failed: {exc}", file=sys.stderr)
        return 1
    if record["state"] != "done":
        print(f"job {record['id']} failed: {record.get('error')}",
              file=sys.stderr)
        return 1
    rows = [dict(metric=k, value=round(v, 4))
            for k, v in record["summary"].items()]
    print(format_table(rows, title=f"{args.workload} / {args.prefetcher}"))
    return 0


def _cmd_jobs(args) -> int:
    import json as _json

    from repro.serve import ServiceClient, ServiceError

    client = ServiceClient(_serve_url(args))
    try:
        if args.metrics:
            print(_json.dumps(client.metrics(), indent=2, sort_keys=True))
            return 0
        if args.id:
            print(_json.dumps(client.status(args.id), indent=2))
            return 0
        records = client.jobs()
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not records:
        print("no jobs")
        return 0
    rows = [
        {
            "id": r["id"],
            "state": r["state"],
            "workload": r["job"]["workload"],
            "prefetcher": r["job"]["prefetcher"],
            "priority": r["priority"],
            "attempts": r["attempts"],
        }
        for r in records
    ]
    print(format_table(rows, title=f"jobs at {client.base_url}"))
    return 0


def _cmd_experiment_space(args) -> int:
    """The ``--space`` path: adaptive search against a running daemon."""
    import json as _json

    from repro.serve import ServiceClient, ServiceError

    text = args.space
    if text.startswith("@"):
        try:
            with open(text[1:], "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"error: cannot read space file: {exc}", file=sys.stderr)
            return 2
    try:
        space = _json.loads(text)
    except ValueError as exc:
        print(f"error: --space is not valid JSON: {exc}", file=sys.stderr)
        return 2
    schedule = {"screen": args.screen, "full": args.full, "eta": args.eta}
    if args.cutoff is not None:
        schedule["cutoff"] = args.cutoff
    client = ServiceClient(_serve_url(args))
    try:
        accepted = client.submit_experiment(
            space,
            schedule=schedule,
            objective=args.objective,
            priority=args.priority,
        )
    except (ServiceError, OSError) as exc:
        print(f"error: experiment submit failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"experiment {accepted['id']} {accepted['state']}: "
        f"{accepted['points']} points, rungs {accepted['rungs']}"
    )
    if args.no_wait:
        return 0
    try:
        record = client.wait_experiment(
            accepted["id"], timeout=args.wait_timeout
        )
    except (ServiceError, OSError, TimeoutError) as exc:
        print(f"error: experiment wait failed: {exc}", file=sys.stderr)
        return 1
    for round_report in record.get("rounds", []):
        print(
            f"round {round_report['round']}: "
            f"{round_report['instructions']} instructions, "
            f"{round_report['candidates']} candidates -> "
            f"{len(round_report.get('promoted', []))} promoted"
        )
    if record["state"] != "done":
        print(
            f"experiment {record['id']} failed: {record.get('error')}",
            file=sys.stderr,
        )
        return 1
    winner = record["winner"]
    spec = winner["spec"]
    rows = [
        dict(field="workload", value=spec["workload"]),
        dict(field="prefetcher", value=spec["prefetcher"]),
        dict(field="knobs", value=_json.dumps(spec.get("prefetcher_kwargs", {}))),
        dict(field=winner["metric"], value=round(winner["score"], 4)),
        dict(field="job", value=winner["job_id"]),
    ]
    print(format_table(rows, title=f"experiment {record['id']} winner"))
    return 0


def _cmd_experiment(args) -> int:
    if args.space is not None:
        return _cmd_experiment_space(args)
    if args.id is None:
        print("error: experiment needs an id or --space", file=sys.stderr)
        return 2
    if args.id not in EXPERIMENTS:
        print(
            f"error: unknown experiment {args.id!r} "
            f"(choose from {', '.join(sorted(EXPERIMENTS))})",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None:
        import os

        os.environ["REPRO_WORKERS"] = str(args.workers)
    module = importlib.import_module(EXPERIMENTS[args.id])
    rows = module.run()
    print(module.format_results(rows))
    if args.export:
        from repro.analysis.export import export_rows

        path = export_rows(args.export, rows, experiment=args.id)
        print(f"\nrows exported to {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    return _cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
